// pitop — offline cluster console for CellPilot telemetry reports.
//
//   pitop TELEMETRY.json
//       Render the windowed time-series as per-blade and per-route
//       sparkline tables (one column per virtual-time window), followed by
//       the stall/saturation detector's verdict: spans of windows where
//       queue depth grows while goodput falls.
//
//   pitop TELEMETRY.json --check-trace TRACE.json
//       Cross-oracle mode: every stall span the detector flags must be
//       explained by a recovery event in the trace written by the same run
//       (spe_respawn, copilot_failover, blade_restore, or a coordinated
//       checkpoint's ckpt_begin/ckpt_cut/ckpt_commit span).  The telemetry
//       side knows only that queues grew and deliveries dropped; the trace
//       side knows why.  Exit 0 iff the two accounts agree — the same
//       discipline as `tracestats --check-metrics`: 0 agreement, 1
//       disagreement, 2 usage/malformed input.
//
// Like the other tools this has no dependency on the simulator: the
// telemetry report is a benchjson document (parsed with benchkit's reader)
// and the trace is Chrome trace JSON, one event per line, parsed with the
// shared benchjson line scanner.  All arithmetic is on exact virtual
// nanoseconds and window indices, so the output is byte-identical across
// runs of the same seeded program.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "benchkit/benchjson.hpp"

namespace {

// ---------------------------------------------------------------------------
// Telemetry report loading

/// One row of the telemetry report: one (series, window) cell.
struct Row {
  int job = 0;
  std::string kind;
  int route = 0;
  int channel = -1;
  std::string entity;
  long long win = 0;
  unsigned long long count = 0;
  long long sum = 0;
  long long min = 0;
  long long max = 0;
};

bool load_telemetry(const std::string& path, std::vector<Row>* rows,
                    long long* window_ns) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "pitop: cannot open " << path << "\n";
    return false;
  }
  std::stringstream buf;
  buf << f.rdbuf();
  benchkit::Doc doc;
  std::string error;
  if (!benchkit::parse(buf.str(), &doc, &error)) {
    std::cerr << "pitop: " << path << " is not a telemetry report (" << error
              << ")\n";
    return false;
  }
  std::string bench;
  if (!benchkit::get_string(doc.meta, "bench", &bench) ||
      bench != "telemetry") {
    std::cerr << "pitop: " << path << " is not a telemetry report (bench=\""
              << bench << "\")\n";
    return false;
  }
  double w = 0;
  if (!benchkit::get_number(doc.meta, "windowNs", &w) || w < 1) {
    std::cerr << "pitop: " << path << " has no windowNs\n";
    return false;
  }
  *window_ns = static_cast<long long>(w);
  for (const benchkit::Fields& fields : doc.rows) {
    Row r;
    double job = 0;
    double route = 0;
    double channel = 0;
    double win = 0;
    double count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    if (!benchkit::get_number(fields, "job", &job) ||
        !benchkit::get_string(fields, "kind", &r.kind) ||
        !benchkit::get_number(fields, "route", &route) ||
        !benchkit::get_number(fields, "channel", &channel) ||
        !benchkit::get_string(fields, "entity", &r.entity) ||
        !benchkit::get_number(fields, "win", &win) ||
        !benchkit::get_number(fields, "count", &count) ||
        !benchkit::get_number(fields, "sum", &sum) ||
        !benchkit::get_number(fields, "min", &min) ||
        !benchkit::get_number(fields, "max", &max)) {
      std::cerr << "pitop: malformed telemetry row in " << path << "\n";
      return false;
    }
    r.job = static_cast<int>(job);
    r.route = static_cast<int>(route);
    r.channel = static_cast<int>(channel);
    r.win = static_cast<long long>(win);
    r.count = static_cast<unsigned long long>(count);
    r.sum = static_cast<long long>(sum);
    r.min = static_cast<long long>(min);
    r.max = static_cast<long long>(max);
    rows->push_back(std::move(r));
  }
  if (rows->empty()) {
    std::cerr << "pitop: " << path
              << " contains no telemetry rows (disarmed run?)\n";
    return false;
  }
  return true;
}

/// True for the kinds whose per-window cell is an instantaneous depth
/// (render/aggregate with max); the rest are per-window counters
/// (render/aggregate with the sample count).
bool is_gauge(const std::string& kind) {
  return kind == "mailbox_depth" || kind == "pending_ops" ||
         kind == "spe_pool_busy" || kind == "net_window" ||
         kind == "net_stash" || kind == "journal_len" ||
         kind == "parked_ops";
}

/// Blade bucket of an entity name: the dot-path prefix ("node0.cell1.spe3"
/// -> "node0"); reliable-layer links ("2->3") and anything without a dot
/// form their own buckets.
std::string blade_of(const std::string& entity) {
  const std::size_t dot = entity.find('.');
  return dot == std::string::npos ? entity : entity.substr(0, dot);
}

// ---------------------------------------------------------------------------
// Sparkline rendering

/// One column per window bucket, nine intensity levels.  ASCII on purpose:
/// the console's bytes are part of the determinism contract, so no locale
/// or terminal may reinterpret them.
const char kLevels[] = " .:-=+*#@";

std::string sparkline(const std::vector<long long>& cells, long long peak) {
  std::string out;
  out.reserve(cells.size());
  for (const long long v : cells) {
    if (v <= 0 || peak <= 0) {
      out += kLevels[0];
    } else {
      const long long clamped = std::min(v, peak);
      out += kLevels[1 + (clamped - 1) * 7 / peak];
    }
  }
  return out;
}

/// Per-window values of one console line, bucketed down to at most
/// `max_cols` columns (bucket value = max of its windows, so a one-window
/// spike never disappears into the average).
std::vector<long long> bucketize(const std::map<long long, long long>& wins,
                                 long long lo, long long hi, int max_cols,
                                 long long* bucket_width) {
  const long long span = hi - lo + 1;
  const long long width = (span + max_cols - 1) / max_cols;
  *bucket_width = width;
  std::vector<long long> cells(
      static_cast<std::size_t>((span + width - 1) / width), 0);
  for (const auto& [win, value] : wins) {
    cells[static_cast<std::size_t>((win - lo) / width)] =
        std::max(cells[static_cast<std::size_t>((win - lo) / width)], value);
  }
  return cells;
}

// ---------------------------------------------------------------------------
// Console mode

constexpr int kMaxColumns = 64;

void render_job(int job, const std::vector<const Row*>& rows) {
  long long lo = rows.front()->win;
  long long hi = rows.front()->win;
  for (const Row* r : rows) {
    lo = std::min(lo, r->win);
    hi = std::max(hi, r->win);
  }
  std::printf("job %d: windows %lld..%lld\n", job, lo, hi);

  // Per-blade tables: (blade, kind) -> window -> aggregated value.  Gauges
  // aggregate with max (deepest queue on the blade), counters with the
  // per-window sample count summed across the blade's series.
  std::map<std::string, std::map<std::string, std::map<long long, long long>>>
      blades;
  // Per-route traffic: (route, kind, unit) -> window -> sum.
  std::map<int, std::map<std::string, std::map<long long, long long>>> routes;
  for (const Row* r : rows) {
    auto& line = blades[blade_of(r->entity)][r->kind];
    if (is_gauge(r->kind)) {
      line[r->win] = std::max(line[r->win], r->max);
    } else {
      line[r->win] += static_cast<long long>(r->count);
    }
    if (r->route > 0 && (r->kind == "sent" || r->kind == "delivered")) {
      routes[r->route][r->kind + " msgs"][r->win] +=
          static_cast<long long>(r->count);
      routes[r->route][r->kind + " bytes"][r->win] += r->sum;
    }
  }

  for (const auto& [blade, kinds] : blades) {
    std::printf("  blade %s\n", blade.c_str());
    for (const auto& [kind, wins] : kinds) {
      long long peak = 0;
      for (const auto& [win, value] : wins) peak = std::max(peak, value);
      long long bucket = 1;
      const auto cells = bucketize(wins, lo, hi, kMaxColumns, &bucket);
      std::printf("    %-14s %-5s peak %10lld |%s|\n", kind.c_str(),
                  is_gauge(kind) ? "max" : "count", peak,
                  sparkline(cells, peak).c_str());
    }
  }
  for (const auto& [route, kinds] : routes) {
    std::printf("  route type %d\n", route);
    for (const auto& [kind, wins] : kinds) {
      long long peak = 0;
      long long total = 0;
      for (const auto& [win, value] : wins) {
        peak = std::max(peak, value);
        total += value;
      }
      long long bucket = 1;
      const auto cells = bucketize(wins, lo, hi, kMaxColumns, &bucket);
      std::printf("    %-15s total %12lld |%s|\n", kind.c_str(), total,
                  sparkline(cells, peak).c_str());
    }
  }
}

// ---------------------------------------------------------------------------
// Stall/saturation detector

/// A maximal run of consecutive stalled windows, inclusive.
struct Span {
  long long first = 0;
  long long last = 0;
};

/// A flagged span must be longer than any healthy inter-delivery gap, so
/// one idle window between sparse messages never trips the detector; the
/// window length (-pitelemetryevery) is the sensitivity knob.
constexpr long long kMinStallWindows = 2;

/// Flags spans where the cluster-wide queue depth grows while goodput has
/// fallen to zero — the signature of a stalled consumer (dead SPE,
/// failed-over Co-Pilot, blade restore) with producers still pushing.
///
/// goodput(w) = delivered messages in window w (0 when none);
/// depth(w)   = max over all queue gauges (mailbox_depth, parked_ops,
///              net_window, net_stash, journal_len) of the window's max,
///              carried forward over sample-less windows (a gauge keeps
///              its level until the next transition is recorded).
///
/// A *drought* is a maximal run of consecutive goodput-0 windows with a
/// delivery on both sides — traffic existed before and resumed after, so
/// it is a mid-run gap, not startup or shutdown.  A drought is flagged as
/// a stall iff it spans at least kMinStallWindows windows AND the queue
/// depth at its end exceeds the depth just before it began: deliveries
/// stopped while work kept queueing.
std::vector<Span> detect_stalls(const std::vector<const Row*>& rows) {
  std::map<long long, long long> depth_max;  // window -> max of queue gauges
  std::map<long long, long long> goodput;    // window -> delivered msgs
  long long lo = rows.front()->win;
  long long hi = rows.front()->win;
  for (const Row* r : rows) {
    lo = std::min(lo, r->win);
    hi = std::max(hi, r->win);
    if (r->kind == "mailbox_depth" || r->kind == "parked_ops" ||
        r->kind == "net_window" || r->kind == "net_stash" ||
        r->kind == "journal_len") {
      depth_max[r->win] = std::max(depth_max[r->win], r->max);
    } else if (r->kind == "delivered") {
      goodput[r->win] += static_cast<long long>(r->count);
    }
  }

  // Carried-forward depth per window, indexed from lo.
  std::vector<long long> depth(static_cast<std::size_t>(hi - lo + 1), 0);
  long long level = 0;
  for (long long w = lo; w <= hi; ++w) {
    const auto dit = depth_max.find(w);
    if (dit != depth_max.end()) level = dit->second;
    depth[static_cast<std::size_t>(w - lo)] = level;
  }
  const auto depth_at = [&](long long w) {
    return w < lo ? 0 : depth[static_cast<std::size_t>(w - lo)];
  };
  const auto put_at = [&](long long w) {
    const auto git = goodput.find(w);
    return git != goodput.end() ? git->second : 0;
  };

  std::vector<Span> spans;
  bool seen_delivery = false;
  long long drought_start = -1;
  for (long long w = lo; w <= hi; ++w) {
    if (put_at(w) > 0) {
      if (drought_start >= 0 && seen_delivery) {
        const long long a = drought_start;
        const long long b = w - 1;
        if (b - a + 1 >= kMinStallWindows && depth_at(b) > depth_at(a - 1)) {
          spans.push_back(Span{a, b});
        }
      }
      drought_start = -1;
      seen_delivery = true;
    } else if (drought_start < 0) {
      drought_start = w;
    }
  }
  return spans;
}

// ---------------------------------------------------------------------------
// Cross-oracle mode

/// A recovery span from the trace: the virtual-time extent of an event
/// that explains a stall, converted to window indices.
struct OracleSpan {
  long long first = 0;
  long long last = 0;
  std::string what;  // "spe_respawn node0.cell0.spe1" etc.
};

bool is_recovery_event(const std::string& name) {
  return name == "spe_respawn" || name == "copilot_failover" ||
         name == "blade_restore" || name == "ckpt_begin" ||
         name == "ckpt_cut" || name == "ckpt_commit";
}

/// Loads the recovery/checkpoint events of a trace, per job, as window
/// spans.  Reuses the shared benchjson line scanner, same as tracestats.
bool load_oracle(const std::string& path, long long window_ns,
                 std::map<int, std::vector<OracleSpan>>* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "pitop: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  bool any_line = false;
  bool any_event = false;
  while (std::getline(f, line)) {
    if (!line.empty()) any_line = true;
    if (line.rfind("{\"ph\":\"X\"", 0) != 0) continue;
    benchkit::Fields fields;
    std::string error;
    if (!benchkit::parse_object_line(line, &fields, &error)) {
      std::cerr << "pitop: malformed event line in " << path << " (" << error
                << "): " << line << "\n";
      return false;
    }
    any_event = true;
    double pid = 0;
    double ts = 0;
    double dur = 0;
    std::string name;
    std::string entity;
    if (!benchkit::get_number(fields, "pid", &pid) ||
        !benchkit::get_number(fields, "ts", &ts) ||
        !benchkit::get_number(fields, "dur", &dur) ||
        !benchkit::get_string(fields, "name", &name)) {
      std::cerr << "pitop: event line missing a required field in " << path
                << ": " << line << "\n";
      return false;
    }
    if (!is_recovery_event(name)) continue;
    benchkit::get_string(fields, "args.entity", &entity);
    const long long begin = benchkit::ns_from_us(ts);
    const long long end = begin + benchkit::ns_from_us(dur);
    OracleSpan s;
    s.first = begin / window_ns;
    s.last = end / window_ns;
    s.what = name + " " + entity;
    (*out)[static_cast<int>(pid)].push_back(std::move(s));
  }
  if (!any_line) {
    std::cerr << "pitop: " << path << " is empty — not a trace file\n";
    return false;
  }
  if (!any_event) {
    std::cerr << "pitop: " << path
              << " contains no trace events (disarmed run, or not a "
                 "CellPilot trace?)\n";
    return false;
  }
  return true;
}

/// Checks every flagged stall span against the recovery oracle.  A span is
/// explained iff it intersects at least one recovery span of the same job.
/// Returns the number of unexplained spans.
int check_job(int job, const std::vector<Span>& stalls,
              const std::vector<OracleSpan>& oracle) {
  int unexplained = 0;
  for (const Span& s : stalls) {
    const OracleSpan* hit = nullptr;
    for (const OracleSpan& o : oracle) {
      if (s.first <= o.last && o.first <= s.last) {
        hit = &o;
        break;
      }
    }
    if (hit != nullptr) {
      std::printf("  job %d stall [%lld..%lld]: explained by %s "
                  "[%lld..%lld]\n",
                  job, s.first, s.last, hit->what.c_str(), hit->first,
                  hit->last);
    } else {
      std::printf("  job %d stall [%lld..%lld]: UNEXPLAINED (no recovery "
                  "event overlaps)\n",
                  job, s.first, s.last);
      ++unexplained;
    }
  }
  return unexplained;
}

int usage() {
  std::cerr << "usage: pitop TELEMETRY.json\n"
               "       pitop TELEMETRY.json --check-trace TRACE.json\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 4) return usage();
  if (argc == 4 && std::string(argv[2]) != "--check-trace") return usage();

  std::vector<Row> rows;
  long long window_ns = 0;
  if (!load_telemetry(argv[1], &rows, &window_ns)) return 2;

  std::map<int, std::vector<const Row*>> jobs;
  for (const Row& r : rows) jobs[r.job].push_back(&r);

  if (argc == 2) {
    std::printf("pitop: window %lld ns, %zu jobs\n", window_ns, jobs.size());
    for (const auto& [job, jrows] : jobs) {
      render_job(job, jrows);
      const auto stalls = detect_stalls(jrows);
      if (stalls.empty()) {
        std::printf("  stall spans: none\n");
      } else {
        for (const Span& s : stalls) {
          std::printf("  stall span [%lld..%lld]\n", s.first, s.last);
        }
      }
    }
    return 0;
  }

  std::map<int, std::vector<OracleSpan>> oracle;
  if (!load_oracle(argv[3], window_ns, &oracle)) return 2;

  int flagged = 0;
  int unexplained = 0;
  for (const auto& [job, jrows] : jobs) {
    const auto stalls = detect_stalls(jrows);
    flagged += static_cast<int>(stalls.size());
    static const std::vector<OracleSpan> kNone;
    const auto oit = oracle.find(job);
    unexplained +=
        check_job(job, stalls, oit != oracle.end() ? oit->second : kNone);
  }

  if (unexplained == 0) {
    std::printf("pitop: trace oracle agrees with telemetry (%d stall "
                "spans)\n",
                flagged);
    return 0;
  }
  std::printf("pitop: %d unexplained stall spans\n", unexplained);
  return 1;
}
