// slogate.cpp — the SLO regression gate for BENCH_loadgen.json runs.
//
//   slogate --baseline bench/baselines/loadgen_seed1.json BENCH_loadgen.json
//   slogate --baseline <path> --update-baseline <candidate>   # refresh
//
// Exit codes: 0 = within tolerance, 1 = regression, 2 = usage error or a
// missing/malformed file.  All gate logic lives in src/benchkit/slo.* so
// the unit tests exercise exactly what CI runs; this file is argument
// parsing and I/O.
//
// Tolerances are one-sided (faster is never a failure) and overridable:
//   --p99-tol 0.25        route p99 may grow 25% (+ --p99-floor-us slack)
//   --degraded-tol 1.0    chaos degraded-window p99 may grow 100%
//   --rate-tol 0.05       achieved throughput may drop 5%
//   --capacity-tol 0.10   per-class capacity may drop 10%
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "benchkit/slo.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: slogate --baseline FILE [--update-baseline] CANDIDATE\n"
      "               [--p99-tol F] [--p99-floor-us F] [--degraded-tol F]\n"
      "               [--rate-tol F] [--capacity-tol F]\n");
  return 2;
}

bool read_file(const std::string& path, std::string* out,
               std::string* error) {
  std::ifstream f(path);
  if (!f) {
    *error = "cannot open " + path;
    return false;
  }
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

bool load_doc(const std::string& path, benchkit::slo::Doc* doc) {
  std::string text;
  std::string error;
  if (!read_file(path, &text, &error)) {
    std::fprintf(stderr, "slogate: %s\n", error.c_str());
    return false;
  }
  if (!benchkit::slo::parse(text, doc, &error)) {
    std::fprintf(stderr, "slogate: %s: malformed benchjson (%s)\n",
                 path.c_str(), error.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string candidate_path;
  bool update = false;
  benchkit::slo::Tolerances tol;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](double* out) {
      if (i + 1 >= argc) return false;
      char* end = nullptr;
      const double v = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || v < 0) return false;
      *out = v;
      return true;
    };
    if (arg == "--baseline") {
      if (i + 1 >= argc) return usage();
      baseline_path = argv[++i];
    } else if (arg == "--update-baseline") {
      update = true;
    } else if (arg == "--p99-tol") {
      if (!value(&tol.p99_frac)) return usage();
    } else if (arg == "--p99-floor-us") {
      if (!value(&tol.p99_floor_us)) return usage();
    } else if (arg == "--degraded-tol") {
      if (!value(&tol.degraded_frac)) return usage();
    } else if (arg == "--rate-tol") {
      if (!value(&tol.rate_frac)) return usage();
    } else if (arg == "--capacity-tol") {
      if (!value(&tol.capacity_frac)) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "slogate: unknown flag %s\n", arg.c_str());
      return usage();
    } else if (candidate_path.empty()) {
      candidate_path = arg;
    } else {
      std::fprintf(stderr, "slogate: more than one candidate file\n");
      return usage();
    }
  }
  if (baseline_path.empty() || candidate_path.empty()) return usage();

  // The candidate must parse in every mode — --update-baseline must never
  // check in a file the gate itself cannot read back.
  benchkit::slo::Doc candidate;
  if (!load_doc(candidate_path, &candidate)) return 2;

  if (update) {
    std::string text;
    std::string error;
    if (!read_file(candidate_path, &text, &error)) {
      std::fprintf(stderr, "slogate: %s\n", error.c_str());
      return 2;
    }
    std::ofstream out(baseline_path, std::ios::trunc);
    out << text;
    out.close();
    if (!out) {
      std::fprintf(stderr, "slogate: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "slogate: baseline %s updated from %s\n",
                 baseline_path.c_str(), candidate_path.c_str());
    return 0;
  }

  benchkit::slo::Doc baseline;
  if (!load_doc(baseline_path, &baseline)) return 2;

  const benchkit::slo::GateResult result =
      benchkit::slo::gate(baseline, candidate, tol);
  for (const std::string& note : result.notes) {
    std::printf("slogate: note: %s\n", note.c_str());
  }
  for (const auto& issue : result.issues) {
    std::printf("slogate: FAIL %s: %s\n", issue.where.c_str(),
                issue.message.c_str());
  }
  if (!result.ok) {
    std::printf("slogate: %zu regression(s) vs %s\n", result.issues.size(),
                baseline_path.c_str());
    return 1;
  }
  std::printf("slogate: OK (%zu baseline rows held) vs %s\n",
              baseline.rows.size(), baseline_path.c_str());
  return 0;
}
