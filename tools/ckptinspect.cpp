// ckptinspect.cpp — offline checkpoint-file dump and verifier.
//
//   ckptinspect CHECKPOINT                 # verify + human summary
//   ckptinspect --json OUT.json CHECKPOINT # also emit a benchjson report
//
// Exit codes: 0 = file verifies (framing, every per-section CRC, commit
// trailer), 1 = corrupt or truncated, 2 = usage error or unreadable file.
// All parsing lives in core/checkpoint (ckpt::deserialize) so this tool,
// the golden tests and the restore path agree byte-for-byte on what a
// valid checkpoint is; this file is argument handling and presentation.
//
// The --json report uses the shared benchjson writer (one row per shard,
// journal totals aggregated) so checkpoint contents can be diffed and
// regression-tracked with the same tooling as the bench results.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "core/checkpoint.hpp"

namespace {

int usage() {
  std::fprintf(stderr, "usage: ckptinspect [--json FILE] CHECKPOINT\n");
  return 2;
}

bool read_bytes(const std::string& path, std::vector<std::byte>* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  f.seekg(0, std::ios::end);
  const std::streamoff size = f.tellg();
  if (size < 0) return false;
  f.seekg(0, std::ios::beg);
  out->resize(static_cast<std::size_t>(size));
  f.read(reinterpret_cast<char*>(out->data()), size);
  return static_cast<bool>(f);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string ckpt_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      if (i + 1 >= argc) return usage();
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ckptinspect: unknown flag %s\n", arg.c_str());
      return usage();
    } else if (ckpt_path.empty()) {
      ckpt_path = arg;
    } else {
      std::fprintf(stderr, "ckptinspect: more than one checkpoint file\n");
      return usage();
    }
  }
  if (ckpt_path.empty()) return usage();

  std::vector<std::byte> bytes;
  if (!read_bytes(ckpt_path, &bytes)) {
    std::fprintf(stderr, "ckptinspect: cannot read %s\n", ckpt_path.c_str());
    return 2;
  }

  const cellpilot::ckpt::ParseResult parsed =
      cellpilot::ckpt::deserialize(bytes);
  if (!parsed.ok) {
    std::printf("ckptinspect: CORRUPT %s: %s\n", ckpt_path.c_str(),
                parsed.error.c_str());
    return 1;
  }
  const cellpilot::ckpt::Image& img = parsed.image;

  std::printf("checkpoint %s: %zu bytes, cut %u VERIFIED\n",
              ckpt_path.c_str(), bytes.size(), img.cut);
  std::printf("  frontier: begin=%lld commit=%lld (virtual time)\n",
              static_cast<long long>(img.begin),
              static_cast<long long>(img.commit));
  std::printf("  channels: %u  links: %zu  shards: %zu\n", img.channels,
              img.links.size(), img.shards.size());

  std::uint64_t total_writes = 0;
  std::uint64_t total_reads = 0;
  std::size_t total_parked = 0;
  std::size_t total_images = 0;
  std::size_t total_ls_bytes = 0;
  for (const cellpilot::ckpt::Shard& shard : img.shards) {
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    for (const cellpilot::ckpt::JournalMark& m : shard.journal) {
      writes += m.writes;
      reads += m.reads;
    }
    std::size_t ls_bytes = 0;
    for (const cellpilot::ckpt::SpeImage& image : shard.images) {
      ls_bytes += image.ls.size();
    }
    std::printf(
        "  node%d: stamp=%lld serviced=%llu journal=%zu marks "
        "(%llu writes, %llu reads) parked=%zu images=%zu (%zu LS bytes)\n",
        shard.node, static_cast<long long>(shard.stamp),
        static_cast<unsigned long long>(shard.serviced),
        shard.journal.size(), static_cast<unsigned long long>(writes),
        static_cast<unsigned long long>(reads), shard.parked.size(),
        shard.images.size(), ls_bytes);
    total_writes += writes;
    total_reads += reads;
    total_parked += shard.parked.size();
    total_images += shard.images.size();
    total_ls_bytes += ls_bytes;
  }

  if (!json_path.empty()) {
    benchkit::BenchJson json("ckptinspect");
    json.meta("file", ckpt_path);
    json.meta("bytes", static_cast<std::int64_t>(bytes.size()));
    json.meta("cut", static_cast<std::int64_t>(img.cut));
    json.meta("begin", static_cast<std::int64_t>(img.begin));
    json.meta("commit", static_cast<std::int64_t>(img.commit));
    json.meta("channels", static_cast<std::int64_t>(img.channels));
    json.meta("links", static_cast<std::int64_t>(img.links.size()));
    json.meta("journal_writes", static_cast<std::int64_t>(total_writes));
    json.meta("journal_reads", static_cast<std::int64_t>(total_reads));
    json.meta("parked_ops", static_cast<std::int64_t>(total_parked));
    json.meta("spe_images", static_cast<std::int64_t>(total_images));
    json.meta("ls_bytes", static_cast<std::int64_t>(total_ls_bytes));
    for (const cellpilot::ckpt::Shard& shard : img.shards) {
      benchkit::JsonRow& row = json.add_row();
      row.set("node", static_cast<std::int64_t>(shard.node))
          .set("stamp", static_cast<std::int64_t>(shard.stamp))
          .set("serviced", static_cast<std::int64_t>(shard.serviced))
          .set("journal_marks", static_cast<std::int64_t>(shard.journal.size()))
          .set("parked", static_cast<std::int64_t>(shard.parked.size()))
          .set("images", static_cast<std::int64_t>(shard.images.size()));
    }
    if (!json.write_file(json_path)) return 2;
  }
  return 0;
}
