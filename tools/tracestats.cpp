// tracestats — offline lifeline analyzer for CellPilot trace files.
//
//   tracestats TRACE.json
//       Join write/read events into per-message lifelines and print, per
//       job and per Table I route type, a critical-path table: message
//       count, end-to-end latency, and blocking-time attribution across
//       the transport legs (Co-Pilot hops, MPI legs, mailbox traffic).
//
//   tracestats TRACE.json --check-metrics METRICS.json
//       Cross-oracle mode: recompute per-route msg_latency and read_block
//       totals from the trace and compare them against the "agg":"route"
//       rollup lines of a metrics report written by the same run.  Exit 0
//       iff every (job, kind, route) cell agrees exactly — the online
//       histogram path and this offline join must see the same virtual
//       nanoseconds or one of them is lying.
//
// Like tracecheck, this tool has no dependency on the simulator: it reads
// the Chrome trace JSON that core/trace serializes one event per line,
// through the shared benchkit/benchjson line parser (the same scanner the
// writer side pins down), so the two ends of the format cannot drift.
// Timestamps are virtual microseconds with exactly three decimals, so the
// original virtual nanoseconds are recovered exactly (ns_from_us).
//
// The join needs no wire-format change: the k-th write on a channel pairs
// with the k-th read on that channel, in the file's canonical event order —
// the same FIFO discipline the online latency ledger (core/metrics) uses,
// so the two agree sample for sample, faults included.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "benchkit/benchjson.hpp"

namespace {

struct Ev {
  int job = 0;
  long long ts_ns = 0;   ///< virtual begin
  long long dur_ns = 0;  ///< virtual duration
  std::string name;
  int channel = -1;
  int route = 0;
};

/// Loads the complete-event lines ("ph":"X") of a trace file, preserving
/// the file's canonical per-job order.  Exit-2 conditions are reported by
/// returning false.
bool load_trace(const std::string& path, std::vector<Ev>* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "tracestats: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  bool any_line = false;
  while (std::getline(f, line)) {
    if (!line.empty()) any_line = true;
    if (line.rfind("{\"ph\":\"X\"", 0) != 0) continue;
    benchkit::Fields fields;
    std::string error;
    if (!benchkit::parse_object_line(line, &fields, &error)) {
      std::cerr << "tracestats: malformed event line in " << path << " ("
                << error << "): " << line << "\n";
      return false;
    }
    Ev e;
    double pid = 0;
    double ts = 0;
    double dur = 0;
    double channel = -1;
    double route = 0;
    if (!benchkit::get_number(fields, "pid", &pid) ||
        !benchkit::get_number(fields, "ts", &ts) ||
        !benchkit::get_number(fields, "dur", &dur) ||
        !benchkit::get_string(fields, "name", &e.name) ||
        !benchkit::get_number(fields, "args.channel", &channel) ||
        !benchkit::get_number(fields, "args.route", &route)) {
      std::cerr << "tracestats: event line missing a required field in "
                << path << ": " << line << "\n";
      return false;
    }
    e.job = static_cast<int>(pid);
    e.ts_ns = benchkit::ns_from_us(ts);
    e.dur_ns = benchkit::ns_from_us(dur);
    e.channel = static_cast<int>(channel);
    e.route = static_cast<int>(route);
    out->push_back(std::move(e));
  }
  if (!any_line) {
    std::cerr << "tracestats: " << path << " is empty — not a trace file\n";
    return false;
  }
  if (out->empty()) {
    std::cerr << "tracestats: " << path
              << " contains no trace events (disarmed run, or not a "
                 "CellPilot trace?)\n";
    return false;
  }
  return true;
}

bool is_write(const Ev& e) {
  return e.name == "pilot_write" || e.name == "spe_write";
}
bool is_read(const Ev& e) {
  return e.name == "pilot_read" || e.name == "spe_read";
}

struct RouteTotals {
  unsigned long long latency_count = 0;
  unsigned long long latency_sum = 0;
  unsigned long long block_count = 0;
  unsigned long long block_sum = 0;
};

/// (job, route) -> recomputed totals.  The join is per (job, channel):
/// k-th write pairs k-th read, latency = read.end - write.begin, counted
/// under the read's route type — exactly the online ledger's discipline.
/// Collected in two passes: a blocked reader's read event can BEGIN before
/// its write does, so in canonical (begin-sorted) order reads may precede
/// the writes they pair with.
std::map<std::pair<int, int>, RouteTotals> recompute(
    const std::vector<Ev>& events) {
  std::map<std::pair<int, int>, std::vector<const Ev*>> writes;
  std::map<std::pair<int, int>, std::vector<const Ev*>> reads;
  for (const Ev& e : events) {
    if (e.channel < 0) continue;
    const auto link = std::make_pair(e.job, e.channel);
    if (is_write(e)) writes[link].push_back(&e);
    if (is_read(e)) reads[link].push_back(&e);
  }
  std::map<std::pair<int, int>, RouteTotals> totals;
  for (const auto& [link, rs] : reads) {
    const auto wit = writes.find(link);
    const std::vector<const Ev*>* ws =
        wit == writes.end() ? nullptr : &wit->second;
    for (std::size_t k = 0; k < rs.size(); ++k) {
      const Ev& r = *rs[k];
      RouteTotals& t = totals[{r.job, r.route}];
      t.block_count += 1;
      t.block_sum += static_cast<unsigned long long>(r.dur_ns);
      if (ws != nullptr && k < ws->size()) {
        t.latency_count += 1;
        t.latency_sum += static_cast<unsigned long long>(
            r.ts_ns + r.dur_ns - (*ws)[k]->ts_ns);
      }
    }
  }
  return totals;
}

// ---------------------------------------------------------------------------
// Report mode

/// Transport legs whose durations we attribute to a route's lifelines.
const char* const kLegKinds[] = {
    "mpi_send",       "mpi_recv",        "copilot_request", "copilot_relay",
    "copilot_pair",   "copilot_deliver", "copilot_park",    "mbox_push",
    "mbox_pop",       "dma_get",         "dma_put",
};

int report(const std::vector<Ev>& events) {
  const auto totals = recompute(events);

  // channel -> route map per job, from the endpoint events that know it.
  std::map<std::pair<int, int>, int> route_of;
  for (const Ev& e : events) {
    if (e.channel >= 0 && e.route > 0 && (is_write(e) || is_read(e))) {
      route_of[{e.job, e.channel}] = e.route;
    }
  }
  // (job, route, leg kind) -> summed duration, for channel-attributed legs.
  std::map<std::pair<int, int>, std::map<std::string, unsigned long long>>
      legs;
  for (const Ev& e : events) {
    if (e.channel < 0) continue;
    const auto it = route_of.find({e.job, e.channel});
    if (it == route_of.end()) continue;
    for (const char* k : kLegKinds) {
      if (e.name == k) {
        legs[{e.job, it->second}][e.name] +=
            static_cast<unsigned long long>(e.dur_ns);
        break;
      }
    }
  }

  for (const auto& [jr, t] : totals) {
    std::printf("job %d route type %d\n", jr.first, jr.second);
    std::printf("  messages          %llu\n", t.latency_count);
    std::printf("  latency total     %llu ns\n", t.latency_sum);
    if (t.latency_count > 0) {
      std::printf("  latency mean      %llu ns\n",
                  t.latency_sum / t.latency_count);
    }
    std::printf("  read block total  %llu ns over %llu reads\n", t.block_sum,
                t.block_count);
    unsigned long long attributed = 0;
    const auto lit = legs.find(jr);
    if (lit != legs.end()) {
      for (const auto& [kind, ns] : lit->second) {
        std::printf("  leg %-16s %llu ns\n", kind.c_str(), ns);
        attributed += ns;
      }
    }
    // Legs overlap the lifeline (and each other: a relay contains its MPI
    // send), so the residual is indicative, not a strict remainder.
    std::printf("  legs attributed   %llu ns (residual %lld ns)\n",
                attributed,
                static_cast<long long>(t.latency_sum) -
                    static_cast<long long>(attributed));
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Cross-oracle mode

struct Cell {
  unsigned long long count = 0;
  unsigned long long sum = 0;
  bool operator==(const Cell&) const = default;
};

/// Parses the "agg":"route" rollup lines of a metrics report into
/// (job, kind, route) -> {count, sumNs}.
bool load_metrics_routes(const std::string& path,
                         std::map<std::tuple<int, std::string, int>, Cell>*
                             out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) {
    std::cerr << "tracestats: cannot open " << path << "\n";
    return false;
  }
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"agg\":\"route\"") == std::string::npos) continue;
    benchkit::Fields fields;
    std::string error;
    if (!benchkit::parse_object_line(line, &fields, &error)) {
      std::cerr << "tracestats: malformed rollup line in " << path << " ("
                << error << "): " << line << "\n";
      return false;
    }
    double job = 0;
    double route = 0;
    double count = 0;
    double sum_ns = 0;
    std::string kind;
    if (!benchkit::get_number(fields, "job", &job) ||
        !benchkit::get_string(fields, "kind", &kind) ||
        !benchkit::get_number(fields, "route", &route) ||
        !benchkit::get_number(fields, "count", &count) ||
        !benchkit::get_number(fields, "sumNs", &sum_ns)) {
      std::cerr << "tracestats: rollup line missing a required field in "
                << path << ": " << line << "\n";
      return false;
    }
    Cell c;
    c.count = static_cast<unsigned long long>(count);
    c.sum = static_cast<unsigned long long>(sum_ns);
    (*out)[{static_cast<int>(job), kind, static_cast<int>(route)}] = c;
  }
  return true;
}

int check_metrics(const std::vector<Ev>& events, const std::string& mpath) {
  std::map<std::tuple<int, std::string, int>, Cell> reported;
  if (!load_metrics_routes(mpath, &reported)) return 2;

  std::map<std::tuple<int, std::string, int>, Cell> computed;
  for (const auto& [jr, t] : recompute(events)) {
    if (jr.second <= 0) continue;
    if (t.latency_count > 0) {
      computed[{jr.first, "msg_latency", jr.second}] = {t.latency_count,
                                                        t.latency_sum};
    }
    if (t.block_count > 0) {
      computed[{jr.first, "read_block", jr.second}] = {t.block_count,
                                                       t.block_sum};
    }
  }

  int mismatches = 0;
  auto complain = [&](const std::tuple<int, std::string, int>& key,
                      const Cell* trace_side, const Cell* metrics_side) {
    ++mismatches;
    std::printf("MISMATCH job %d %s route %d:", std::get<0>(key),
                std::get<1>(key).c_str(), std::get<2>(key));
    if (trace_side != nullptr) {
      std::printf(" trace count=%llu sumNs=%llu", trace_side->count,
                  trace_side->sum);
    } else {
      std::printf(" absent from trace");
    }
    if (metrics_side != nullptr) {
      std::printf(" metrics count=%llu sumNs=%llu", metrics_side->count,
                  metrics_side->sum);
    } else {
      std::printf(" absent from metrics report");
    }
    std::printf("\n");
  };

  for (const auto& [key, cell] : computed) {
    const auto it = reported.find(key);
    if (it == reported.end()) {
      complain(key, &cell, nullptr);
    } else if (!(it->second == cell)) {
      complain(key, &cell, &it->second);
    }
  }
  for (const auto& [key, cell] : reported) {
    if (computed.find(key) == computed.end()) complain(key, nullptr, &cell);
  }

  if (mismatches == 0) {
    std::printf("tracestats: metrics report agrees with trace (%zu route "
                "cells)\n",
                computed.size());
    return 0;
  }
  std::printf("tracestats: %d mismatching route cells\n", mismatches);
  return 1;
}

int usage() {
  std::cerr << "usage: tracestats TRACE.json\n"
               "       tracestats TRACE.json --check-metrics METRICS.json\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 && argc != 4) return usage();
  if (argc == 4 && std::string(argv[2]) != "--check-metrics") return usage();

  std::vector<Ev> events;
  if (!load_trace(argv[1], &events)) return 2;

  if (argc == 4) return check_metrics(events, argv[3]);
  return report(events);
}
