// loadgen_determinism_test.cpp — the byte-identity contract of the load
// generator.
//
// slogate's baselines (and CI's two-seed gate) only mean something if the
// generator is a pure function of its seed: same seed, same JSON, same
// metrics snapshot, bit for bit, regardless of host thread scheduling.
// The sweep here is deliberately small (two points, short horizon) so the
// test runs in well under a second — determinism does not get cheaper to
// check at scale, only slower.
#include <cstring>

#include "benchkit/loadgen.hpp"
#include "gtest/gtest.h"

namespace {

namespace loadgen = benchkit::loadgen;

loadgen::Config small_config(std::uint64_t seed) {
  loadgen::Config cfg;
  cfg.seed = seed;
  cfg.horizon = simtime::ms(10);
  cfg.load_points_rps = {8000, 20000};
  return cfg;
}

TEST(LoadgenDeterminism, SameSeedByteIdenticalJsonAndSnapshot) {
  const loadgen::Config cfg = small_config(1);
  const loadgen::SweepResult first = loadgen::run_sweep(cfg);
  const loadgen::SweepResult second = loadgen::run_sweep(cfg);

  ASSERT_EQ(first.points.size(), second.points.size());
  for (std::size_t p = 0; p < first.points.size(); ++p) {
    ASSERT_FALSE(first.points[p].aborted) << first.points[p].abort_reason;
    ASSERT_FALSE(second.points[p].aborted) << second.points[p].abort_reason;
    EXPECT_EQ(first.points[p].snapshot_rc, 0);
    // The snapshot is POD: bitwise equality is the strongest possible
    // statement that every route histogram replayed identically.
    EXPECT_EQ(std::memcmp(&first.points[p].snapshot,
                          &second.points[p].snapshot,
                          sizeof first.points[p].snapshot),
              0)
        << "metrics snapshot diverged at point " << p;
  }

  const std::string json_a = loadgen::to_bench_json(cfg, first).to_string();
  const std::string json_b = loadgen::to_bench_json(cfg, second).to_string();
  EXPECT_EQ(json_a, json_b) << "BENCH_loadgen.json is not reproducible";
}

TEST(LoadgenDeterminism, DistinctSeedsDistinctRuns) {
  const loadgen::SweepResult s1 = loadgen::run_sweep(small_config(1));
  const loadgen::SweepResult s2 = loadgen::run_sweep(small_config(2));
  const std::string j1 = loadgen::to_bench_json(small_config(1), s1).to_string();
  const std::string j2 = loadgen::to_bench_json(small_config(2), s2).to_string();
  EXPECT_NE(j1, j2) << "seed is not reaching the arrival streams";
}

TEST(LoadgenDeterminism, HealthyPointMeetsSlo) {
  // The 8k point sits well under the master's knee; if it ever misses its
  // SLO the defaults have drifted from the topology and every baseline
  // comparison downstream turns meaningless.
  const loadgen::SweepResult sweep = loadgen::run_sweep(small_config(1));
  ASSERT_FALSE(sweep.points.empty());
  const loadgen::PointResult& healthy = sweep.points.front();
  for (int c = 0; c < loadgen::kClassCount; ++c) {
    EXPECT_TRUE(healthy.cls[c].slo_ok)
        << loadgen::class_name(c) << " missed SLO at the healthy point: p99="
        << healthy.cls[c].route.p99_us
        << "us achieved=" << healthy.cls[c].achieved_rps << "/"
        << healthy.cls[c].offered_rps;
    EXPECT_GT(healthy.cls[c].completed, 0u);
    EXPECT_EQ(healthy.cls[c].errors, 0u);
  }
  // Clean runs must never trip supervision or report a degraded window.
  EXPECT_EQ(healthy.failovers, 0u);
  EXPECT_EQ(healthy.respawns, 0u);
  EXPECT_EQ(healthy.degraded_end, 0);
}

}  // namespace
