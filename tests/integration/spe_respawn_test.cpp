// spe_respawn_test.cpp — transparent SPE self-healing under -pirespawn.
//
// Contract under test (the graceful-degradation ladder, top to bottom):
//  * a covered death is invisible: supervision respawns the program into a
//    fresh slot, the channel epoch advances, journaled ops are replayed
//    (writes deduped, reads re-served) and every peer sees exactly the
//    data a fault-free run would have produced — no error, no gap, no dup;
//  * recovery is first-class vocabulary: spe_respawn / epoch_flush trace
//    events, a respawn_latency metric sample per attempt, and
//    respawns/recovered_ops in PI_CHANNEL_STATS;
//  * consecutive respawns of the same process double the backoff charged
//    before the new occupant starts (visible as the spe_respawn event
//    duration);
//  * a death chain that outlives the budget degrades — the channel is
//    poisoned and peers get PI_SPE_FAULT, exactly as if -pirespawn were
//    absent — never a hang, never an abort;
//  * an armed but untripped budget is free: no counters move.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/cellpilot.hpp"
#include "core/copilot.hpp"
#include "core/faultplan.hpp"
#include "core/trace.hpp"
#include "pilot/errors.hpp"
#include "simtime/metrics.hpp"
#include "simtime/tracebuf.hpp"

namespace {

namespace tb = simtime::tracebuf;
namespace sm = simtime::metrics;
using cellpilot::faults::FaultPlan;
using cellpilot::supervision::fault_count;
using cellpilot::supervision::recovered_op_count;
using cellpilot::supervision::reset_counters;
using cellpilot::supervision::respawn_count;
using cellpilot::trace::ScopedTraceCapture;
using pilot::PilotError;

PI_CHANNEL* g_ch_main = nullptr;  ///< writer SPE -> PI_MAIN
PI_CHANNEL* g_ch_pair = nullptr;  ///< writer SPE -> reader SPE (type 4)
PI_CHANNEL* g_ch_sum = nullptr;   ///< reader SPE -> PI_MAIN
std::atomic<int> g_writer_code{-1};

constexpr int kBurst = 8;  ///< messages per writer program run

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

class SpeRespawnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_counters();
    g_ch_main = nullptr;
    g_ch_pair = nullptr;
    g_ch_sum = nullptr;
    g_writer_code.store(-1);
  }
  ~SpeRespawnTest() override { FaultPlan::global().reset(); }
};

PI_SPE_PROGRAM(burst_writer) {
  // Each incarnation runs the whole loop from the top; the journal dedupes
  // whatever the previous incarnation already delivered.
  try {
    for (int i = 0; i < kBurst; ++i) PI_Write(g_ch_main, "%d", 10 * i);
  } catch (const pilot::PilotError& e) {
    g_writer_code.store(static_cast<int>(e.code()));
    return 0;
  }
  g_writer_code.store(0);
  return 0;
}

// --- covered death mid-burst: transparent recovery -----------------------

TEST_F(SpeRespawnTest, CoveredDeathMidBurstIsInvisibleToTheReader) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // Kill the original occupant during its third request: two writes are
  // already journaled, so the replacement's replay must dedupe them.
  opts.args = {"-pirespawn=2",
               "-pifault=spe_crash_mid@node0.cell0.spe0:op=3"};
  std::vector<int> got;
  PI_CHANNEL_STATS stats{};
  ScopedTraceCapture capture;
  sm::arm();
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(writer, PI_MAIN);  // Table I type 2
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);  // first launch -> node0.cell0.spe0
        for (int i = 0; i < kBurst; ++i) {
          int v = -1;
          PI_Read(g_ch_main, "%d", &v);
          got.push_back(v);
        }
        EXPECT_EQ(PI_GetChannelStats(g_ch_main, &stats), 0);
        PI_StopMain(0);
        return 0;
      },
      opts);
  const std::vector<sm::Series> series = sm::drain();
  sm::disarm();
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();

  // Exactly the fault-free sequence: no gap, no duplicate, no error.
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(got[i], 10 * i) << "i=" << i;
  EXPECT_EQ(g_writer_code.load(), 0) << "the replacement must finish clean";

  EXPECT_EQ(respawn_count(), 1u);
  EXPECT_GE(recovered_op_count(), 1u)
      << "the replay never deduped the journaled writes";
  EXPECT_EQ(fault_count(), 0u) << "a covered death must not poison peers";

  // The recovery is visible in the channel totals but not as a fault.
  EXPECT_EQ(stats.respawns, 1u);
  EXPECT_EQ(stats.faults, 0u);
  EXPECT_GE(stats.recovered_ops, 1u);

  // Observability: one spe_respawn event (attempt 1) naming the fresh
  // slot the replacement landed in (faulted slots are never reused), and
  // one respawn_latency sample covering death -> restart.
  const auto events = capture.drain();
  int respawn_events = 0;
  for (const auto& e : events) {
    if (e.kind != tb::Kind::kSpeRespawn) continue;
    ++respawn_events;
    EXPECT_EQ(std::string(e.entity), "node0.cell0.spe1");
    EXPECT_EQ(e.aux, 1) << "first (and only) attempt";
    EXPECT_GT(e.end, e.begin) << "backoff must charge virtual time";
  }
  EXPECT_EQ(respawn_events, 1);
  std::uint64_t latency_samples = 0;
  for (const auto& s : series) {
    if (s.key.kind == sm::Kind::kRespawnLatency) latency_samples += s.hist.count();
  }
  EXPECT_EQ(latency_samples, 1u);
}

// --- budget exhaustion: clean degradation to the poisoned channel --------

TEST_F(SpeRespawnTest, ExhaustedBudgetDegradesToPeerFaultWithoutAbort) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // site=* kills *every* incarnation at its first request, so a budget of
  // one is spent on a replacement that immediately dies too.
  opts.args = {"-pirespawn=1", "-pifault=spe_crash_mid@*:op=1"};
  int main_code = -1;
  PI_CHANNEL_STATS stats{};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(writer, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        int v = -1;
        try {
          PI_Read(g_ch_main, "%d", &v);
        } catch (const PilotError& e) {
          main_code = static_cast<int>(e.code());
        }
        EXPECT_EQ(PI_GetChannelStats(g_ch_main, &stats), 0);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted)
      << "degradation must never abort the job: " << r.abort_reason;
  EXPECT_EQ(main_code, static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(respawn_count(), 1u) << "the whole budget must be spent first";
  EXPECT_GE(fault_count(), 1u);
  EXPECT_EQ(stats.respawns, 1u);
  EXPECT_GE(stats.faults, 1u) << "exhaustion must fall back to poisoning";
}

// --- chained deaths: backoff doubles per attempt --------------------------

TEST_F(SpeRespawnTest, ConsecutiveRespawnsDoubleTheBackoff) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // Budget two against an every-incarnation killer: attempt 1, attempt 2
  // (a respawn of a respawn), then degradation.
  opts.args = {"-pirespawn=2", "-pifault=spe_crash_mid@*:op=1"};
  int main_code = -1;
  ScopedTraceCapture capture;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(writer, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        int v = -1;
        try {
          PI_Read(g_ch_main, "%d", &v);
        } catch (const PilotError& e) {
          main_code = static_cast<int>(e.code());
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(main_code, static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(respawn_count(), 2u);

  // The spe_respawn event spans death -> replacement start: a constant
  // dispatch cost plus the backoff deadline * 2^(attempt-1).  With the
  // default 500us SPE deadline, attempt 2 therefore charges exactly one
  // extra base deadline over attempt 1 (2d - d = d) — the doubling made
  // visible without knowing the dispatch constant.
  const auto events = capture.drain();
  std::vector<simtime::SimTime> spans;
  std::vector<std::int64_t> attempts;
  for (const auto& e : events) {
    if (e.kind != tb::Kind::kSpeRespawn) continue;
    spans.push_back(e.end - e.begin);
    attempts.push_back(e.aux);
  }
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(attempts[0], 1);
  EXPECT_EQ(attempts[1], 2);
  EXPECT_GT(spans[0], 0);
  EXPECT_EQ(spans[1] - spans[0], 500'000)
      << "the second attempt must double the first attempt's backoff";
}

// --- respawn of a respawn that eventually succeeds ------------------------

TEST_F(SpeRespawnTest, RespawnOfARespawnStillDeliversTheBurst) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // Kill the original occupant *and* its first replacement (which lands in
  // the next pool slot, spe1); the second replacement survives and the
  // burst must still arrive intact.
  opts.args = {"-pirespawn=3",
               "-pifault=spe_crash_mid@node0.cell0.spe0:op=1"
               ";spe_crash_mid@node0.cell0.spe1:op=1"};
  std::vector<int> got;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(writer, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        for (int i = 0; i < kBurst; ++i) {
          int v = -1;
          PI_Read(g_ch_main, "%d", &v);
          got.push_back(v);
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(got[i], 10 * i) << "i=" << i;
  EXPECT_EQ(respawn_count(), 2u) << "both deaths must be absorbed";
  EXPECT_EQ(fault_count(), 0u);
}

// --- reader-side death: journaled reads are re-served ---------------------

PI_SPE_PROGRAM(pair_writer) {
  for (int i = 0; i < kBurst; ++i) PI_Write(g_ch_pair, "%d", i + 1);
  return 0;
}

PI_SPE_PROGRAM(doomed_reader) {
  // Dies during its third read; the replacement re-runs from the top and
  // the first two reads must come back from the journal (the writer's
  // copies of those messages are long consumed).
  int sum = 0;
  for (int i = 0; i < kBurst; ++i) {
    int v = 0;
    PI_Read(g_ch_pair, "%d", &v);
    sum += v;
  }
  PI_Write(g_ch_sum, "%d", sum);
  return 0;
}

TEST_F(SpeRespawnTest, DeadReaderReplaysJournaledReadsAfterRespawn) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // Launch order pins the names: writer -> spe0, reader -> spe1.
  opts.args = {"-pirespawn=2",
               "-pifault=spe_crash_mid@node0.cell0.spe1:op=3"};
  int sum = 0;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(pair_writer, PI_MAIN, 0);
        PI_PROCESS* reader = PI_CreateSPE(doomed_reader, PI_MAIN, 1);
        g_ch_pair = PI_CreateChannel(writer, reader);  // Table I type 4
        g_ch_sum = PI_CreateChannel(reader, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        PI_RunSPE(reader, 0, nullptr);
        PI_Read(g_ch_sum, "%d", &sum);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(sum, kBurst * (kBurst + 1) / 2)
      << "every message must be counted exactly once across incarnations";
  EXPECT_EQ(respawn_count(), 1u);
  EXPECT_GE(recovered_op_count(), 2u)
      << "the journaled reads were never re-served";
  EXPECT_EQ(fault_count(), 0u);
}

// --- armed but untripped: the budget is free ------------------------------

TEST_F(SpeRespawnTest, ArmedBudgetWithoutFaultsMovesNoCounters) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pirespawn=4"};
  std::vector<int> got;
  PI_CHANNEL_STATS stats{};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(writer, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        for (int i = 0; i < kBurst; ++i) {
          int v = -1;
          PI_Read(g_ch_main, "%d", &v);
          got.push_back(v);
        }
        EXPECT_EQ(PI_GetChannelStats(g_ch_main, &stats), 0);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(got[i], 10 * i);
  EXPECT_EQ(respawn_count(), 0u);
  EXPECT_EQ(recovered_op_count(), 0u);
  EXPECT_EQ(stats.respawns, 0u);
  EXPECT_EQ(stats.recovered_ops, 0u);
}

}  // namespace
