// telemetry_e2e_test.cpp — the `-pitelemetry` flag path end to end: the
// session arms at PI_Configure, the run's epilogue writes the windowed
// report through benchjson, PI_GetTelemetrySnapshot honours the metrics
// harvest contract (PI_ERR_PHASE before PI_StartAll, totals final after
// PI_StopMain, all-zero when disarmed), and two seeded runs leave
// byte-identical report files — the property the telemetry-parity CI job
// pins on the real binaries.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "core/cellpilot.hpp"
#include "core/telemetry.hpp"
#include "pilot/errors.hpp"
#include "simtime/timeseries.hpp"

namespace {

namespace ts = simtime::timeseries;

// Canonical kind slots of PI_TELEMETRY_SNAPSHOT::kinds.
constexpr int kSlotDelivered = 8;
constexpr int kSlotSent = 9;

PI_CHANNEL* g_ch = nullptr;
std::atomic<int> g_sum{0};

PI_SPE_PROGRAM(burst_writer) {
  for (int i = 0; i < 4; ++i) PI_Write(g_ch, "%d", i + 1);
  return 0;
}

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

std::string report_path(const char* name) {
  return ::testing::TempDir() + "cellpilot_" + name + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// The shared job: a 4-int type-2 burst, with the snapshot contract
/// checked in-phase on both sides of PI_StartAll.
int telemetry_job(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spe = PI_CreateSPE(burst_writer, PI_MAIN, 0);
  g_ch = PI_CreateChannel(spe, PI_MAIN);

  PI_TELEMETRY_SNAPSHOT snap{};
  EXPECT_EQ(PI_GetTelemetrySnapshot(&snap), PI_ERR_PHASE)
      << "before PI_StartAll there is no epoch to report";
  EXPECT_THROW(PI_GetTelemetrySnapshot(nullptr), pilot::PilotError);

  PI_StartAll();
  PI_RunSPE(spe, 0, nullptr);
  int sum = 0;
  for (int i = 0; i < 4; ++i) {
    int v = 0;
    PI_Read(g_ch, "%d", &v);
    sum += v;
  }
  g_sum.store(sum);
  PI_StopMain(0);

  // Quiesced: the whole burst is visible.  Slot layout is the engine's
  // canonical kind order, pinned by PI_TELEMETRY_KIND_COUNT's doc block.
  EXPECT_EQ(PI_GetTelemetrySnapshot(&snap), 0);
  if (cellpilot::telemetry::TelemetrySession::global().armed()) {
    EXPECT_EQ(snap.window_ns, ts::window());
    EXPECT_EQ(snap.kinds[kSlotDelivered].count, 4u);
    EXPECT_EQ(snap.kinds[kSlotSent].count, 4u);
    EXPECT_EQ(snap.kinds[kSlotDelivered].sum,
              snap.kinds[kSlotSent].sum)
        << "counter sums carry payload bytes on both endpoints";
    EXPECT_GE(snap.kinds[kSlotDelivered].windows, 1u);
  } else {
    for (const PI_TELEMETRY_STAT& k : snap.kinds) {
      EXPECT_EQ(k.windows, 0u);
      EXPECT_EQ(k.count, 0u);
    }
  }
  return 0;
}

class TelemetryE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
    g_sum.store(0);
  }
  void TearDown() override {
    cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
  }
};

cellpilot::RunOptions armed_opts(const std::string& path) {
  cellpilot::RunOptions opts;
  opts.args = {"-pitelemetry=" + path, "-pitelemetryevery=100"};
  return opts;
}

TEST_F(TelemetryE2eTest, FlagArmedRunWritesAParsableWindowedReport) {
  const std::string path = report_path("telemetry_e2e");
  std::remove(path.c_str());

  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, telemetry_job, armed_opts(path));
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(g_sum.load(), 10);

  const std::string text = slurp(path);
  ASSERT_FALSE(text.empty()) << "no report at " << path;
  benchkit::Doc doc;
  std::string error;
  ASSERT_TRUE(benchkit::parse(text, &doc, &error)) << error;
  std::string bench;
  EXPECT_TRUE(benchkit::get_string(doc.meta, "bench", &bench));
  EXPECT_EQ(bench, "telemetry");
  double window_ns = 0;
  EXPECT_TRUE(benchkit::get_number(doc.meta, "windowNs", &window_ns));
  EXPECT_EQ(window_ns, 100000) << "-pitelemetryevery=100 is 100 us";
  ASSERT_FALSE(doc.rows.empty());
  std::uint64_t delivered = 0;
  bool saw_gauge = false;
  for (const benchkit::Fields& row : doc.rows) {
    std::string kind;
    ASSERT_TRUE(benchkit::get_string(row, "kind", &kind));
    double count = 0;
    ASSERT_TRUE(benchkit::get_number(row, "count", &count));
    if (kind == "delivered") delivered += static_cast<std::uint64_t>(count);
    if (kind == "mailbox_depth" || kind == "spe_pool_busy") saw_gauge = true;
  }
  EXPECT_EQ(delivered, 4u) << "the report must cover the whole burst";
  EXPECT_TRUE(saw_gauge) << "gauges must ride beside the counters";
  std::remove(path.c_str());
}

TEST_F(TelemetryE2eTest, TwoSeededRunsLeaveByteIdenticalReports) {
  const std::string path = report_path("telemetry_parity");
  auto one_run = [&] {
    std::remove(path.c_str());
    cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
    cluster::Cluster machine = one_cell();
    const auto r = cellpilot::run(machine, telemetry_job, armed_opts(path));
    EXPECT_FALSE(r.aborted) << r.abort_reason;
    return slurp(path);
  };
  const std::string first = one_run();
  const std::string second = one_run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  std::remove(path.c_str());
}

TEST_F(TelemetryE2eTest, DisarmedRunWritesNothingAndSnapshotsZero) {
  ASSERT_FALSE(cellpilot::telemetry::TelemetrySession::global().armed());
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, telemetry_job);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(g_sum.load(), 10);
  EXPECT_FALSE(ts::armed());
}

}  // namespace
