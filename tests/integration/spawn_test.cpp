// spawn_test.cpp — runtime SPE spawning through PI_CreateSPESlot +
// PI_SpawnSPE.
//
// The spawn tier lifts Pilot's static-declaration restriction: the
// communication structure (processes, channels, routes) is still declared
// in the configuration phase, but *which program* occupies an SPE slot is
// decided at execution time.  Contract under test:
//  * a slot created with PI_CreateSPESlot runs whatever program each
//    PI_SpawnSPE binds, and a respawn reuses the pooled SPE context the
//    previous occupant vacated (visible as a stable entity across the
//    spe_spawn / spe_retire trace events);
//  * spawn and retire are first-class vocabulary: spe_spawn/spe_retire
//    events and a spawn_latency metric per launch;
//  * a slot whose occupant faulted is poisoned — respawning it is a usage
//    error, not a haunted context;
//  * the usual phase/typing misuses are caught as PI_USAGE errors.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/cellpilot.hpp"
#include "core/faultplan.hpp"
#include "core/trace.hpp"
#include "pilot/errors.hpp"
#include "simtime/metrics.hpp"
#include "simtime/tracebuf.hpp"

namespace {

namespace tb = simtime::tracebuf;
namespace sm = simtime::metrics;
using cellpilot::faults::FaultPlan;
using cellpilot::trace::ScopedTraceCapture;
using pilot::ErrorCode;
using pilot::PilotError;

PI_CHANNEL* g_out = nullptr;
std::atomic<int> g_value{0};

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

class SpawnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_out = nullptr;
    g_value.store(0);
  }
  ~SpawnTest() override { FaultPlan::global().reset(); }
};

PI_SPE_PROGRAM(first_occupant) {
  PI_Write(g_out, "%d", 101 + arg1);
  return 0;
}

PI_SPE_PROGRAM(second_occupant) {
  PI_Write(g_out, "%d", 202);
  return 0;
}

PI_SPE_PROGRAM(crashing_occupant) {
  PI_Write(g_out, "%d", 1);  // the fault plan kills the SPE at this request
  return 0;
}

TEST_F(SpawnTest, SlotRunsEachBoundProgramAndReusesThePooledContext) {
  cluster::Cluster machine = one_cell();
  int v1 = 0;
  int v2 = 0;
  ScopedTraceCapture capture;
  sm::arm();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* slot = PI_CreateSPESlot(PI_MAIN, 0);
    g_out = PI_CreateChannel(slot, PI_MAIN);
    PI_StartAll();
    PI_SpawnSPE(slot, &first_occupant, 0, nullptr);
    PI_Read(g_out, "%d", &v1);
    // Respawn: waits for the first occupant to retire, then binds a
    // different program to the same declared slot and channel.
    PI_SpawnSPE(slot, &second_occupant, 0, nullptr);
    PI_Read(g_out, "%d", &v2);
    PI_StopMain(0);
    return 0;
  });
  const std::vector<sm::Series> series = sm::drain();
  sm::disarm();
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(v1, 101);
  EXPECT_EQ(v2, 202);

  // Two launches, two retirements — and the respawn reuses the context
  // the first occupant vacated (same entity on every event).
  const auto events = capture.drain();
  std::vector<std::string> spawn_entities;
  std::vector<std::string> retire_entities;
  for (const auto& e : events) {
    if (e.kind == tb::Kind::kSpeSpawn) spawn_entities.push_back(e.entity);
    if (e.kind == tb::Kind::kSpeRetire) retire_entities.push_back(e.entity);
  }
  ASSERT_EQ(spawn_entities.size(), 2u);
  ASSERT_EQ(retire_entities.size(), 2u);
  EXPECT_EQ(spawn_entities[0], spawn_entities[1])
      << "the respawn must reuse the pooled SPE context";
  EXPECT_EQ(retire_entities[0], spawn_entities[0]);

  std::uint64_t spawn_samples = 0;
  for (const auto& s : series) {
    if (s.key.kind == sm::Kind::kSpawnLatency) spawn_samples += s.hist.count();
  }
  EXPECT_EQ(spawn_samples, 2u) << "one spawn_latency sample per launch";
}

TEST_F(SpawnTest, SpawnOverridesAStaticallyBoundProgram) {
  cluster::Cluster machine = one_cell();
  int v = 0;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    // Declared with one program, spawned with another: PI_SpawnSPE's
    // runtime binding wins.
    PI_PROCESS* proc = PI_CreateSPE(first_occupant, PI_MAIN, 0);
    g_out = PI_CreateChannel(proc, PI_MAIN);
    PI_StartAll();
    PI_SpawnSPE(proc, &second_occupant, 0, nullptr);
    PI_Read(g_out, "%d", &v);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(v, 202);
}

TEST_F(SpawnTest, AFaultedOccupantPoisonsTheSlot) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=spe_crash@node0.cell0.spe0:op=1"};
  int read_code = -1;
  int respawn_code = -1;
  std::string respawn_detail;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* slot = PI_CreateSPESlot(PI_MAIN, 0);
        g_out = PI_CreateChannel(slot, PI_MAIN);
        PI_StartAll();
        PI_SpawnSPE(slot, &crashing_occupant, 0, nullptr);
        int v = 0;
        try {
          PI_Read(g_out, "%d", &v);
        } catch (const PilotError& e) {
          read_code = static_cast<int>(e.code());
        }
        try {
          PI_SpawnSPE(slot, &second_occupant, 0, nullptr);
        } catch (const PilotError& e) {
          respawn_code = static_cast<int>(e.code());
          respawn_detail = e.detail();
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << "a survivable SPE fault aborted the job: "
                          << r.abort_reason;
  EXPECT_EQ(read_code, static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(respawn_code, static_cast<int>(ErrorCode::kUsage));
  EXPECT_NE(respawn_detail.find("cannot be respawned"), std::string::npos)
      << respawn_detail;
}

TEST_F(SpawnTest, MisusesAreCaughtAsUsageErrors) {
  cluster::Cluster machine = one_cell();
  int late_slot_code = -1;
  int rank_target_code = -1;
  int null_program_code = -1;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* slot = PI_CreateSPESlot(PI_MAIN, 0);
    g_out = PI_CreateChannel(slot, PI_MAIN);
    PI_StartAll();
    try {
      (void)PI_CreateSPESlot(PI_MAIN, 1);  // configuration phase is over
    } catch (const PilotError& e) {
      late_slot_code = static_cast<int>(e.code());
    }
    try {
      PI_SpawnSPE(PI_MAIN, &first_occupant, 0, nullptr);  // not an SPE
    } catch (const PilotError& e) {
      rank_target_code = static_cast<int>(e.code());
    }
    try {
      PI_SpawnSPE(slot, nullptr, 0, nullptr);
    } catch (const PilotError& e) {
      null_program_code = static_cast<int>(e.code());
    }
    // Leave the slot occupied so its declared channel is actually used.
    PI_SpawnSPE(slot, &first_occupant, 0, nullptr);
    int v = 0;
    PI_Read(g_out, "%d", &v);
    EXPECT_EQ(v, 101);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(late_slot_code, static_cast<int>(ErrorCode::kUsage));
  EXPECT_EQ(rank_target_code, static_cast<int>(ErrorCode::kUsage));
  EXPECT_EQ(null_program_code, static_cast<int>(ErrorCode::kUsage));
}

}  // namespace
