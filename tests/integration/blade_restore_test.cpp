// blade_restore_test.cpp — whole-blade loss under coordinated checkpoints.
//
// Contract under test (the top rung of the recovery ladder):
//  * with -pickpt armed and a cut committed, a blade_kill fault — every
//    SPE context on the blade dies at once — is absorbed: the successor
//    Co-Pilot relaunches the lost processes and the delivery journal
//    replays across the cut, so every peer sees exactly the fault-free
//    data — no gap, no duplicate, no error (exactly-once delivery);
//  * recovery is first-class vocabulary: blade_restore trace events, a
//    restore_latency metric sample per process, checkpoints/restores in
//    PI_CHANNEL_STATS, and the supervision recovery window spans the
//    outage (bench/loadgen splits its latency samples around it);
//  * the same seeded kill is deterministic: run it twice and the data,
//    the metrics snapshot and the checkpoint file bytes all match;
//  * with no committed checkpoint the kill degrades to poison + PILF —
//    peers fault fast, nothing hangs, nothing aborts;
//  * armed but untriggered (interval never reached) is invisible: trace,
//    metrics and counters are byte-identical to a disarmed run.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/cellpilot.hpp"
#include "core/checkpoint.hpp"
#include "core/copilot.hpp"
#include "core/faultplan.hpp"
#include "core/trace.hpp"
#include "pilot/errors.hpp"
#include "simtime/metrics.hpp"
#include "simtime/tracebuf.hpp"

namespace {

namespace tb = simtime::tracebuf;
namespace sm = simtime::metrics;
namespace ckpt = cellpilot::ckpt;
using cellpilot::faults::FaultPlan;
using cellpilot::supervision::fault_count;
using cellpilot::supervision::recovery_begin;
using cellpilot::supervision::recovery_end;
using cellpilot::supervision::reset_counters;
using cellpilot::supervision::restore_count;
using pilot::PilotError;

PI_CHANNEL* g_ch_main = nullptr;  ///< writer SPE -> PI_MAIN
std::atomic<int> g_writer_code{-1};

constexpr int kBurst = 8;  ///< messages per writer program run

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

std::string ckpt_path(const std::string& name) {
  return ::testing::TempDir() + "cellpilot_" + name + ".ckpt";
}

std::vector<std::byte> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::vector<std::byte> out;
  char c;
  while (f.get(c)) out.push_back(static_cast<std::byte>(c));
  return out;
}

class BladeRestoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_counters();
    g_ch_main = nullptr;
    g_writer_code.store(-1);
  }
  ~BladeRestoreTest() override {
    FaultPlan::global().reset();
    ckpt::CheckpointSession::global().configure("", 0);
  }
};

PI_SPE_PROGRAM(burst_writer) {
  // The restored incarnation re-runs the whole loop from the top; the
  // journal replayed from the checkpoint dedupes whatever the dead blade
  // already delivered.
  try {
    for (int i = 0; i < kBurst; ++i) PI_Write(g_ch_main, "%d", 10 * i);
  } catch (const pilot::PilotError& e) {
    g_writer_code.store(static_cast<int>(e.code()));
    return 0;
  }
  g_writer_code.store(0);
  return 0;
}

/// One seeded kill-and-recover run; returns everything a caller may want
/// to compare or assert on.
struct RunOutcome {
  cellpilot::RunResult result;
  std::vector<int> got;
  PI_CHANNEL_STATS stats{};
  PI_METRICS_SNAPSHOT snapshot{};
  int snapshot_rc = -1;
};

RunOutcome run_killed_burst(cluster::Cluster& machine,
                            const std::vector<std::string>& args) {
  RunOutcome out;
  cellpilot::RunOptions opts;
  opts.args = args;
  out.result = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(writer, PI_MAIN);  // Table I type 2
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        for (int i = 0; i < kBurst; ++i) {
          int v = -1;
          PI_Read(g_ch_main, "%d", &v);
          out.got.push_back(v);
        }
        EXPECT_EQ(PI_GetChannelStats(g_ch_main, &out.stats), 0);
        out.snapshot_rc = PI_GetMetricsSnapshot(&out.snapshot);
        PI_StopMain(0);
        return 0;
      },
      opts);
  return out;
}

// --- the headline scenario: seeded blade loss, restored mid-burst --------

TEST_F(BladeRestoreTest, BladeKillRestoresFromCheckpointExactlyOnce) {
  const std::string path = ckpt_path("restore");
  std::remove(path.c_str());
  cluster::Cluster machine = one_cell();
  cellpilot::trace::ScopedTraceCapture capture;
  sm::arm();
  // Cut every 4 serviced requests; the blade dies serving request 6, so
  // the last committed cut covers the first 4 writes and the journal
  // carries the fifth — the restore must dedupe all five.
  const RunOutcome out = run_killed_burst(
      machine, {"-pickpt=" + path, "-pickptevery=4",
                "-pifault=blade_kill@node0:op=6"});
  const std::vector<sm::Series> series = sm::drain();
  sm::disarm();

  ASSERT_FALSE(out.result.aborted) << out.result.abort_reason;
  ASSERT_TRUE(out.result.errors.empty()) << out.result.errors.front();

  // Exactly the fault-free sequence: no gap, no duplicate, no error.
  ASSERT_EQ(out.got.size(), static_cast<std::size_t>(kBurst));
  for (int i = 0; i < kBurst; ++i) EXPECT_EQ(out.got[i], 10 * i) << "i=" << i;
  EXPECT_EQ(g_writer_code.load(), 0) << "the restored writer must finish";

  // Supervision bookkeeping: one restore, no degradation, the machine's
  // per-node kill counter moved, and the recovery window is real.
  EXPECT_EQ(restore_count(), 1u);
  EXPECT_EQ(fault_count(), 0u) << "a covered kill must not poison peers";
  EXPECT_EQ(machine.blade_kill_count(0), 1);
  EXPECT_LT(recovery_begin(), recovery_end())
      << "the outage must be a non-empty virtual-time window";

  // Channel totals: the cut covered this channel, the restore replayed it.
  EXPECT_GE(out.stats.checkpoints, 1u);
  EXPECT_EQ(out.stats.restores, 1u);
  EXPECT_EQ(out.stats.faults, 0u);

  // The checkpoint file on disk is a committed, verifiable cut.
  const ckpt::ParseResult parsed = ckpt::deserialize(read_bytes(path));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_GE(parsed.image.cut, 1u);
  ASSERT_EQ(parsed.image.shards.size(), 1u);

  // Observability: the cut and the restore are first-class events.
  const auto events = capture.drain();
  int commits = 0;
  int restores = 0;
  for (const auto& e : events) {
    if (e.kind == tb::Kind::kCkptCommit) ++commits;
    if (e.kind == tb::Kind::kBladeRestore) {
      ++restores;
      EXPECT_GT(e.end, e.begin) << "restore must charge virtual time";
    }
  }
  EXPECT_GE(commits, 1);
  EXPECT_EQ(restores, 1);
  std::uint64_t latency_samples = 0;
  std::uint64_t quiesce_samples = 0;
  for (const auto& s : series) {
    if (s.key.kind == sm::Kind::kRestoreLatency) {
      latency_samples += s.hist.count();
    }
    if (s.key.kind == sm::Kind::kCkptQuiesce) {
      quiesce_samples += s.hist.count();
    }
  }
  EXPECT_EQ(latency_samples, 1u);
  EXPECT_GE(quiesce_samples, 1u);
  std::remove(path.c_str());
}

// --- determinism: the restored run is a pure function of the seed --------

TEST_F(BladeRestoreTest, RestoredRunIsDeterministicDownToTheBytes) {
  const std::string path = ckpt_path("determinism");
  const std::vector<std::string> args = {"-pickpt=" + path, "-pickptevery=4",
                                         "-pifault=blade_kill@node0:op=6"};

  std::remove(path.c_str());
  cluster::Cluster m1 = one_cell();
  const RunOutcome first = run_killed_burst(m1, args);
  const std::vector<std::byte> file_first = read_bytes(path);

  reset_counters();
  FaultPlan::global().reset();
  g_writer_code.store(-1);

  std::remove(path.c_str());
  cluster::Cluster m2 = one_cell();
  const RunOutcome second = run_killed_burst(m2, args);
  const std::vector<std::byte> file_second = read_bytes(path);

  ASSERT_FALSE(first.result.aborted) << first.result.abort_reason;
  ASSERT_FALSE(second.result.aborted) << second.result.abort_reason;
  EXPECT_EQ(first.got, second.got);
  ASSERT_EQ(first.snapshot_rc, 0);
  ASSERT_EQ(second.snapshot_rc, 0);
  // The snapshot is POD: bitwise equality pins every histogram replayed
  // identically through the kill, the cut and the restore.
  EXPECT_EQ(std::memcmp(&first.snapshot, &second.snapshot,
                        sizeof first.snapshot),
            0)
      << "metrics snapshot diverged across identical seeded runs";
  ASSERT_FALSE(file_first.empty());
  EXPECT_EQ(file_first, file_second)
      << "checkpoint bytes must be a pure function of the seed";
  std::remove(path.c_str());
}

// --- degraded path: a kill with no checkpoint poisons, never hangs -------

TEST_F(BladeRestoreTest, KillWithoutCheckpointDegradesToPeerFault) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=blade_kill@node0:op=3"};
  int main_code = -1;
  PI_CHANNEL_STATS stats{};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* writer = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(writer, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        int v = -1;
        try {
          // The first two reads may drain pre-kill deliveries; the blade
          // dies at request 3 and with no checkpoint the channel poisons.
          for (int i = 0; i < kBurst; ++i) PI_Read(g_ch_main, "%d", &v);
        } catch (const PilotError& e) {
          main_code = static_cast<int>(e.code());
        }
        EXPECT_EQ(PI_GetChannelStats(g_ch_main, &stats), 0);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted)
      << "degradation must never abort the job: " << r.abort_reason;
  EXPECT_EQ(main_code, static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(restore_count(), 0u);
  EXPECT_GE(fault_count(), 1u);
  EXPECT_EQ(machine.blade_kill_count(0), 1);
  EXPECT_GE(stats.faults, 1u);
  EXPECT_EQ(stats.restores, 0u);
}

// --- parity: armed but untriggered is invisible --------------------------

TEST_F(BladeRestoreTest, ArmedButUntriggeredIsByteIdenticalToDisarmed) {
  const std::string path = ckpt_path("parity");
  std::remove(path.c_str());

  auto run_clean = [&](const std::vector<std::string>& args, RunOutcome* out,
                       std::vector<tb::Event>* events) {
    cluster::Cluster machine = one_cell();
    cellpilot::trace::ScopedTraceCapture capture;
    *out = run_killed_burst(machine, args);
    *events = capture.drain();
  };

  RunOutcome disarmed;
  std::vector<tb::Event> disarmed_events;
  run_clean({}, &disarmed, &disarmed_events);

  RunOutcome armed;
  std::vector<tb::Event> armed_events;
  // An interval the tiny burst never reaches: the session is armed, the
  // journal is live, but no cut ever opens.
  run_clean({"-pickpt=" + path, "-pickptevery=1000000"}, &armed,
            &armed_events);

  ASSERT_FALSE(disarmed.result.aborted) << disarmed.result.abort_reason;
  ASSERT_FALSE(armed.result.aborted) << armed.result.abort_reason;
  EXPECT_EQ(disarmed.got, armed.got);

  // No file, no counters, no events: the armed run is indistinguishable.
  std::ifstream f(path, std::ios::binary);
  EXPECT_FALSE(f.good()) << "an untriggered session must not touch disk";
  EXPECT_EQ(armed.stats.checkpoints, 0u);
  EXPECT_EQ(armed.stats.restores, 0u);
  EXPECT_EQ(restore_count(), 0u);

  ASSERT_EQ(armed.snapshot_rc, 0);
  ASSERT_EQ(disarmed.snapshot_rc, 0);
  EXPECT_EQ(std::memcmp(&disarmed.snapshot, &armed.snapshot,
                        sizeof disarmed.snapshot),
            0)
      << "arming -pickpt perturbed the metrics of an untriggered run";

  // Trace events are POD: the two captures must match event for event.
  ASSERT_EQ(disarmed_events.size(), armed_events.size());
  for (std::size_t i = 0; i < disarmed_events.size(); ++i) {
    EXPECT_EQ(std::memcmp(&disarmed_events[i], &armed_events[i],
                          sizeof disarmed_events[i]),
              0)
        << "trace diverged at event " << i;
  }
}

}  // namespace
