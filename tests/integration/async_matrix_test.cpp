// async_matrix_test.cpp — the Table I conformance matrix, async tier.
//
// The completion engine's promise is that PI_WriteAsync/PI_ReadAsync +
// PI_Wait are the *split form* of PI_Write/PI_Read: same payloads, same
// transport legs, same counters — only the call shape differs.  This file
// re-runs the five-route-type × three-payload-class matrix of
// channel_matrix_test.cpp with every transfer going through the async
// tier, and asserts
//   (a) the payload arrives intact,
//   (b) the message crosses exactly the Table I transport legs its
//       blocking twin crosses (pair stays a memcpy, remote SPE stays
//       relay + deliver, type 1 never touches a Co-Pilot), and
//   (c) the async tier leaves its own vocabulary — op_submit/op_complete
//       events and handle_wait metrics — and *none* of the blocking tier's
//       (no pilot_write/pilot_read/spe_write/spe_read), so the two tiers
//       are distinguishable in any trace.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "core/cellpilot.hpp"
#include "core/trace.hpp"
#include "simtime/metrics.hpp"
#include "simtime/tracebuf.hpp"

namespace {

namespace tb = simtime::tracebuf;
namespace sm = simtime::metrics;
using cellpilot::trace::ChannelCounters;
using cellpilot::trace::ScopedTraceCapture;

enum Payload { kZero = 0, kScalar = 1, kArray = 2 };

constexpr int kScalarValue = 535353;
constexpr int kArrayCount = 200;

double array_element(int i) { return 2.0 + 0.25 * i; }

std::uint64_t payload_bytes(Payload p) {
  switch (p) {
    case kZero: return 0;
    case kScalar: return sizeof(int);
    case kArray: return kArrayCount * sizeof(double);
  }
  return 0;
}

// --- the job (shared by all 15 matrix cells) -----------------------------

int g_type = 0;               ///< Table I type under test
Payload g_payload = kZero;    ///< payload class under test
PI_CHANNEL* g_data = nullptr; ///< the one channel of the job (id 0)
PI_PROCESS* g_spe_r = nullptr;
std::atomic<bool> g_ok{false};

void write_payload_async() {
  PI_HANDLE h = nullptr;
  switch (g_payload) {
    case kZero:
      h = PI_WriteAsync(g_data, "");
      break;
    case kScalar:
      h = PI_WriteAsync(g_data, "%d", kScalarValue);
      break;
    case kArray: {
      double values[kArrayCount];
      for (int i = 0; i < kArrayCount; ++i) values[i] = array_element(i);
      // The payload is marshalled at submission: the stack array may go
      // out of scope before the harvest.
      h = PI_WriteAsync(g_data, "%*lf", kArrayCount, values);
      break;
    }
  }
  PI_Wait(h);
}

bool read_and_check_async() {
  switch (g_payload) {
    case kZero: {
      PI_HANDLE h = PI_ReadAsync(g_data, "");
      PI_Wait(h);
      return true;  // arrival *is* the payload
    }
    case kScalar: {
      int v = 0;
      PI_HANDLE h = PI_ReadAsync(g_data, "%d", &v);
      PI_Wait(h);  // destinations are filled exactly here
      return v == kScalarValue;
    }
    case kArray: {
      double values[kArrayCount] = {};
      PI_HANDLE h = PI_ReadAsync(g_data, "%*lf", kArrayCount, values);
      PI_Wait(h);
      for (int i = 0; i < kArrayCount; ++i) {
        if (values[i] != array_element(i)) return false;
      }
      return true;
    }
  }
  return false;
}

PI_SPE_PROGRAM(amatrix_spe_writer) {
  write_payload_async();
  return 0;
}

PI_SPE_PROGRAM(amatrix_spe_reader) {
  g_ok.store(read_and_check_async());
  return 0;
}

int amatrix_rank_reader(int /*arg*/, void* /*ptr*/) {
  g_ok.store(read_and_check_async());
  return 0;
}

int amatrix_rank_parent(int /*arg*/, void* /*ptr*/) {
  PI_RunSPE(g_spe_r, 0, nullptr);
  return 0;
}

int amatrix_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  switch (g_type) {
    case 1: {  // PPE <-> remote PPE
      PI_PROCESS* reader = PI_CreateProcess(amatrix_rank_reader, 0, nullptr);
      g_data = PI_CreateChannel(PI_MAIN, reader);
      PI_StartAll();
      write_payload_async();
      break;
    }
    case 2: {  // PPE <-> local SPE
      PI_PROCESS* reader = PI_CreateSPE(amatrix_spe_reader, PI_MAIN, 0);
      g_data = PI_CreateChannel(PI_MAIN, reader);
      PI_StartAll();
      PI_RunSPE(reader, 0, nullptr);
      write_payload_async();
      break;
    }
    case 3: {  // PPE <-> remote SPE
      PI_PROCESS* parent = PI_CreateProcess(amatrix_rank_parent, 0, nullptr);
      g_spe_r = PI_CreateSPE(amatrix_spe_reader, parent, 0);
      g_data = PI_CreateChannel(PI_MAIN, g_spe_r);
      PI_StartAll();
      write_payload_async();
      break;
    }
    case 4: {  // SPE <-> local SPE
      PI_PROCESS* writer = PI_CreateSPE(amatrix_spe_writer, PI_MAIN, 0);
      PI_PROCESS* reader = PI_CreateSPE(amatrix_spe_reader, PI_MAIN, 1);
      g_data = PI_CreateChannel(writer, reader);
      PI_StartAll();
      PI_RunSPE(writer, 0, nullptr);
      PI_RunSPE(reader, 0, nullptr);
      break;
    }
    case 5: {  // SPE <-> remote SPE
      PI_PROCESS* parent = PI_CreateProcess(amatrix_rank_parent, 0, nullptr);
      PI_PROCESS* writer = PI_CreateSPE(amatrix_spe_writer, PI_MAIN, 0);
      g_spe_r = PI_CreateSPE(amatrix_spe_reader, parent, 0);
      g_data = PI_CreateChannel(writer, g_spe_r);
      PI_StartAll();
      PI_RunSPE(writer, 0, nullptr);
      break;
    }
  }
  PI_StopMain(0);
  return 0;
}

// --- leg accounting ------------------------------------------------------

struct LegCounts {
  int blocking_api = 0;  ///< any pilot_write/pilot_read/spe_write/spe_read
  int op_submit = 0;
  int op_complete = 0;
  int pair = 0;
  int relay = 0;
  int deliver = 0;
  int mpi_send = 0;
};

LegCounts count_legs(const std::vector<tb::Event>& events, int channel) {
  LegCounts n;
  for (const auto& e : events) {
    if (e.channel != channel) continue;
    switch (e.kind) {
      case tb::Kind::kPilotWrite:
      case tb::Kind::kPilotRead:
      case tb::Kind::kSpeWrite:
      case tb::Kind::kSpeRead: ++n.blocking_api; break;
      case tb::Kind::kOpSubmit: ++n.op_submit; break;
      case tb::Kind::kOpComplete: ++n.op_complete; break;
      case tb::Kind::kCopilotPair: ++n.pair; break;
      case tb::Kind::kCopilotRelay: ++n.relay; break;
      case tb::Kind::kCopilotDeliver: ++n.deliver; break;
      case tb::Kind::kMpiSend: ++n.mpi_send; break;
      default: break;
    }
  }
  return n;
}

// --- the matrix ----------------------------------------------------------

class AsyncChannelMatrix
    : public ::testing::TestWithParam<std::tuple<int, Payload>> {};

TEST_P(AsyncChannelMatrix, AsyncTierCrossesExactlyTheTableILegs) {
  g_type = std::get<0>(GetParam());
  g_payload = std::get<1>(GetParam());
  g_data = nullptr;
  g_spe_r = nullptr;
  g_ok.store(false);

  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  const bool remote = g_type == 1 || g_type == 3 || g_type == 5;
  if (remote) config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine{std::move(config)};

  ScopedTraceCapture capture;
  sm::arm();
  const auto r = cellpilot::run(machine, amatrix_main);
  const std::vector<sm::Series> series = sm::drain();
  sm::disarm();
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_TRUE(g_ok.load()) << "payload did not arrive intact";

  const auto events = capture.drain();
  const LegCounts legs = count_legs(events, 0);

  // Writer-side accounting is identical to the blocking tier.
  const auto stats = ChannelCounters::global().snapshot(0);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.payload_bytes, payload_bytes(g_payload));
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.faults, 0u);

  // The async tier speaks its own vocabulary: one submit + one complete
  // per side, every event stamped with the channel's Table I type, and
  // no blocking-tier event anywhere near the channel.
  EXPECT_EQ(legs.blocking_api, 0)
      << "an async transfer must never record a blocking-tier event";
  EXPECT_EQ(legs.op_submit, 2);
  EXPECT_EQ(legs.op_complete, 2);
  for (const auto& e : events) {
    if (e.channel != 0) continue;
    if (e.kind == tb::Kind::kOpSubmit || e.kind == tb::Kind::kOpComplete) {
      EXPECT_EQ(static_cast<int>(e.route_type), g_type);
    }
  }

  // Every harvest leaves a handle_wait sample.
  std::uint64_t handle_waits = 0;
  for (const auto& s : series) {
    if (s.key.kind == sm::Kind::kHandleWait && s.key.channel == 0) {
      handle_waits += s.hist.count();
    }
  }
  EXPECT_EQ(handle_waits, 2u) << "one handle_wait sample per PI_Wait";

  switch (g_type) {
    case 1:  // pure MPI: no Co-Pilot leg may touch the message
      EXPECT_GE(legs.mpi_send, 1);
      EXPECT_EQ(legs.pair + legs.relay + legs.deliver, 0);
      EXPECT_EQ(stats.copilot_hops, 0u);
      break;
    case 2:  // PPE -> local Co-Pilot -> parked SPE read
    case 3:  // same legs; the Co-Pilot is on the *SPE's* node
      EXPECT_EQ(legs.deliver, 1);
      EXPECT_EQ(legs.pair, 0);
      EXPECT_EQ(legs.relay, 0);
      EXPECT_GE(legs.mpi_send, 1);
      EXPECT_EQ(stats.copilot_hops, 1u);
      break;
    case 4:  // one memcpy pairing, never the network
      EXPECT_EQ(legs.pair, 1);
      EXPECT_EQ(legs.relay, 0);
      EXPECT_EQ(legs.deliver, 0);
      EXPECT_EQ(legs.mpi_send, 0)
          << "a local SPE pair must not cross MiniMPI";
      EXPECT_EQ(stats.copilot_hops, 1u);
      break;
    case 5:  // relay out of the writer's node, deliver into the reader's
      EXPECT_EQ(legs.relay, 1);
      EXPECT_EQ(legs.deliver, 1);
      EXPECT_EQ(legs.pair, 0);
      EXPECT_GE(legs.mpi_send, 1);
      EXPECT_EQ(stats.copilot_hops, 2u);
      break;
    default:
      FAIL() << "bad route type " << g_type;
  }
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<int, Payload>>& info) {
  static const char* payload_names[] = {"Zero", "Scalar", "Array"};
  return "Type" + std::to_string(std::get<0>(info.param)) +
         payload_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    TableI, AsyncChannelMatrix,
    ::testing::Combine(::testing::Range(1, 6),
                       ::testing::Values(kZero, kScalar, kArray)),
    case_name);

}  // namespace
