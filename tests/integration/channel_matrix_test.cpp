// channel_matrix_test.cpp — the Table I conformance matrix.
//
// Every one of the paper's five channel route types, crossed with three
// payload classes (zero-length sync token, small scalar, large array), must
// (a) deliver the payload intact and (b) cross exactly the legs Table I
// prescribes — a local pair is a memcpy, never an MPI message; a remote
// SPE channel is relay + deliver, never a direct copy.  The trace layer
// makes (b) checkable: the test captures every event the message generated
// and fails if the message routed through an unexpected leg.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>
#include <vector>

#include "core/cellpilot.hpp"
#include "core/trace.hpp"
#include "simtime/tracebuf.hpp"

namespace {

namespace tb = simtime::tracebuf;
using cellpilot::trace::ChannelCounters;
using cellpilot::trace::ScopedTraceCapture;

enum Payload { kZero = 0, kScalar = 1, kArray = 2 };

constexpr int kScalarValue = 424242;
constexpr int kArrayCount = 200;

double array_element(int i) { return 1.0 + 0.5 * i; }

std::uint64_t payload_bytes(Payload p) {
  switch (p) {
    case kZero: return 0;
    case kScalar: return sizeof(int);
    case kArray: return kArrayCount * sizeof(double);
  }
  return 0;
}

// --- the job (shared by all 15 matrix cells) -----------------------------

int g_type = 0;               ///< Table I type under test
Payload g_payload = kZero;    ///< payload class under test
PI_CHANNEL* g_data = nullptr; ///< the one channel of the job (id 0)
PI_PROCESS* g_spe_r = nullptr;
std::atomic<bool> g_ok{false};

void write_payload() {
  switch (g_payload) {
    case kZero:
      PI_Write(g_data, "");
      break;
    case kScalar:
      PI_Write(g_data, "%d", kScalarValue);
      break;
    case kArray: {
      double values[kArrayCount];
      for (int i = 0; i < kArrayCount; ++i) values[i] = array_element(i);
      PI_Write(g_data, "%*lf", kArrayCount, values);
      break;
    }
  }
}

bool read_and_check() {
  switch (g_payload) {
    case kZero:
      PI_Read(g_data, "");
      return true;  // arrival *is* the payload
    case kScalar: {
      int v = 0;
      PI_Read(g_data, "%d", &v);
      return v == kScalarValue;
    }
    case kArray: {
      double values[kArrayCount] = {};
      PI_Read(g_data, "%*lf", kArrayCount, values);
      for (int i = 0; i < kArrayCount; ++i) {
        if (values[i] != array_element(i)) return false;
      }
      return true;
    }
  }
  return false;
}

PI_SPE_PROGRAM(matrix_spe_writer) {
  write_payload();
  return 0;
}

PI_SPE_PROGRAM(matrix_spe_reader) {
  g_ok.store(read_and_check());
  return 0;
}

int matrix_rank_reader(int /*arg*/, void* /*ptr*/) {
  g_ok.store(read_and_check());
  return 0;
}

int matrix_rank_parent(int /*arg*/, void* /*ptr*/) {
  PI_RunSPE(g_spe_r, 0, nullptr);
  return 0;
}

int matrix_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  switch (g_type) {
    case 1: {  // PPE <-> remote PPE
      PI_PROCESS* reader = PI_CreateProcess(matrix_rank_reader, 0, nullptr);
      g_data = PI_CreateChannel(PI_MAIN, reader);
      PI_StartAll();
      write_payload();
      break;
    }
    case 2: {  // PPE <-> local SPE
      PI_PROCESS* reader = PI_CreateSPE(matrix_spe_reader, PI_MAIN, 0);
      g_data = PI_CreateChannel(PI_MAIN, reader);
      PI_StartAll();
      PI_RunSPE(reader, 0, nullptr);
      write_payload();
      break;
    }
    case 3: {  // PPE <-> remote SPE
      PI_PROCESS* parent = PI_CreateProcess(matrix_rank_parent, 0, nullptr);
      g_spe_r = PI_CreateSPE(matrix_spe_reader, parent, 0);
      g_data = PI_CreateChannel(PI_MAIN, g_spe_r);
      PI_StartAll();
      write_payload();
      break;
    }
    case 4: {  // SPE <-> local SPE
      PI_PROCESS* writer = PI_CreateSPE(matrix_spe_writer, PI_MAIN, 0);
      PI_PROCESS* reader = PI_CreateSPE(matrix_spe_reader, PI_MAIN, 1);
      g_data = PI_CreateChannel(writer, reader);
      PI_StartAll();
      PI_RunSPE(writer, 0, nullptr);
      PI_RunSPE(reader, 0, nullptr);
      break;
    }
    case 5: {  // SPE <-> remote SPE
      PI_PROCESS* parent = PI_CreateProcess(matrix_rank_parent, 0, nullptr);
      PI_PROCESS* writer = PI_CreateSPE(matrix_spe_writer, PI_MAIN, 0);
      g_spe_r = PI_CreateSPE(matrix_spe_reader, parent, 0);
      g_data = PI_CreateChannel(writer, g_spe_r);
      PI_StartAll();
      PI_RunSPE(writer, 0, nullptr);
      break;
    }
  }
  PI_StopMain(0);
  return 0;
}

// --- leg accounting ------------------------------------------------------

struct LegCounts {
  int pilot_write = 0;
  int pilot_read = 0;
  int spe_write = 0;
  int spe_read = 0;
  int pair = 0;
  int relay = 0;
  int deliver = 0;
  int mpi_send = 0;
};

LegCounts count_legs(const std::vector<tb::Event>& events, int channel) {
  LegCounts n;
  for (const auto& e : events) {
    if (e.channel != channel) continue;
    switch (e.kind) {
      case tb::Kind::kPilotWrite: ++n.pilot_write; break;
      case tb::Kind::kPilotRead: ++n.pilot_read; break;
      case tb::Kind::kSpeWrite: ++n.spe_write; break;
      case tb::Kind::kSpeRead: ++n.spe_read; break;
      case tb::Kind::kCopilotPair: ++n.pair; break;
      case tb::Kind::kCopilotRelay: ++n.relay; break;
      case tb::Kind::kCopilotDeliver: ++n.deliver; break;
      case tb::Kind::kMpiSend: ++n.mpi_send; break;
      default: break;
    }
  }
  return n;
}

bool any_event(const std::vector<tb::Event>& events, tb::Kind kind,
               const std::string& entity) {
  for (const auto& e : events) {
    if (e.kind == kind && entity == e.entity) return true;
  }
  return false;
}

// --- the matrix ----------------------------------------------------------

class ChannelMatrix
    : public ::testing::TestWithParam<std::tuple<int, Payload>> {};

TEST_P(ChannelMatrix, PayloadArrivesIntactViaExactlyTheTableILegs) {
  g_type = std::get<0>(GetParam());
  g_payload = std::get<1>(GetParam());
  g_data = nullptr;
  g_spe_r = nullptr;
  g_ok.store(false);

  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  const bool remote = g_type == 1 || g_type == 3 || g_type == 5;
  if (remote) config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine{std::move(config)};

  ScopedTraceCapture capture;
  const auto r = cellpilot::run(machine, matrix_main);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_TRUE(g_ok.load()) << "payload did not arrive intact";

  const auto events = capture.drain();
  const LegCounts legs = count_legs(events, 0);

  // Writer-side accounting is identical across the matrix.
  const auto stats = ChannelCounters::global().snapshot(0);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.payload_bytes, payload_bytes(g_payload));
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.faults, 0u);

  // The writer leg must be stamped with the channel's Table I type.
  const tb::Kind writer_kind =
      g_type >= 4 ? tb::Kind::kSpeWrite : tb::Kind::kPilotWrite;
  bool saw_writer_leg = false;
  for (const auto& e : events) {
    if (e.kind == writer_kind && e.channel == 0) {
      saw_writer_leg = true;
      EXPECT_EQ(static_cast<int>(e.route_type), g_type);
    }
  }
  EXPECT_TRUE(saw_writer_leg);

  switch (g_type) {
    case 1:  // pure MPI: no Co-Pilot leg may touch the message
      EXPECT_EQ(legs.pilot_write, 1);
      EXPECT_EQ(legs.pilot_read, 1);
      EXPECT_EQ(legs.spe_write, 0);
      EXPECT_EQ(legs.spe_read, 0);
      EXPECT_GE(legs.mpi_send, 1);
      EXPECT_EQ(legs.pair + legs.relay + legs.deliver, 0);
      EXPECT_EQ(stats.copilot_hops, 0u);
      break;
    case 2:  // PPE -> local Co-Pilot -> parked SPE read
    case 3:  // same legs; the Co-Pilot is on the *SPE's* node
      EXPECT_EQ(legs.pilot_write, 1);
      EXPECT_EQ(legs.spe_read, 1);
      EXPECT_EQ(legs.deliver, 1);
      EXPECT_EQ(legs.pair, 0);
      EXPECT_EQ(legs.relay, 0);
      EXPECT_GE(legs.mpi_send, 1);
      EXPECT_EQ(stats.copilot_hops, 1u);
      EXPECT_TRUE(any_event(events, tb::Kind::kCopilotDeliver,
                            g_type == 2 ? "node0.copilot" : "node1.copilot"))
          << "the delivering Co-Pilot must be the reader SPE's own";
      break;
    case 4:  // one memcpy pairing, never the network
      EXPECT_EQ(legs.spe_write, 1);
      EXPECT_EQ(legs.spe_read, 1);
      EXPECT_EQ(legs.pair, 1);
      EXPECT_EQ(legs.relay, 0);
      EXPECT_EQ(legs.deliver, 0);
      EXPECT_EQ(legs.mpi_send, 0)
          << "a local SPE pair must not cross MiniMPI";
      EXPECT_EQ(stats.copilot_hops, 1u);
      break;
    case 5:  // relay out of the writer's node, deliver into the reader's
      EXPECT_EQ(legs.spe_write, 1);
      EXPECT_EQ(legs.spe_read, 1);
      EXPECT_EQ(legs.relay, 1);
      EXPECT_EQ(legs.deliver, 1);
      EXPECT_EQ(legs.pair, 0);
      EXPECT_GE(legs.mpi_send, 1);
      EXPECT_EQ(stats.copilot_hops, 2u);
      EXPECT_TRUE(any_event(events, tb::Kind::kCopilotRelay, "node0.copilot"));
      EXPECT_TRUE(
          any_event(events, tb::Kind::kCopilotDeliver, "node1.copilot"));
      break;
    default:
      FAIL() << "bad route type " << g_type;
  }
}

std::string case_name(
    const ::testing::TestParamInfo<std::tuple<int, Payload>>& info) {
  static const char* payload_names[] = {"Zero", "Scalar", "Array"};
  return "Type" + std::to_string(std::get<0>(info.param)) +
         payload_names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    TableI, ChannelMatrix,
    ::testing::Combine(::testing::Range(1, 6),
                       ::testing::Values(kZero, kScalar, kArray)),
    case_name);

}  // namespace
