// Co-Pilot crash recovery: with copilot_crash armed, the serving Co-Pilot
// dies mid-request, a standby takes over after the heartbeat lease, replays
// the channel/route journal, and resumes service.  The one non-replayable
// request — the victim in flight at the instant of death — fails cleanly
// with PI_COPILOT_FAULT at every peer; everything after the takeover is
// served normally.  No hang, no abort.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/cellpilot.hpp"
#include "core/copilot.hpp"
#include "core/faultplan.hpp"
#include "pilot/errors.hpp"

namespace {

using cellpilot::faults::FaultPlan;
using cellpilot::supervision::failover_count;
using cellpilot::supervision::reset_counters;

PI_CHANNEL* g_ch_victim = nullptr;  ///< in flight when the Co-Pilot dies
PI_CHANNEL* g_ch_after = nullptr;   ///< served by the standby
std::atomic<int> g_victim_code{-1};
std::atomic<int> g_after_code{-1};

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

class CopilotFailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_counters();
    g_victim_code.store(-1);
    g_after_code.store(-1);
  }
  ~CopilotFailoverTest() override { FaultPlan::global().reset(); }
};

PI_SPE_PROGRAM(writes_across_the_crash) {
  // The Co-Pilot crashes serving this first write: it completes with
  // PI_COPILOT_FAULT (the standby cannot replay a request that died with
  // the journal's owner), never hangs.
  try {
    PI_Write(g_ch_victim, "%d", 11);
    g_victim_code.store(0);
  } catch (const pilot::PilotError& e) {
    g_victim_code.store(static_cast<int>(e.code()));
  }
  // The second write lands at the standby: served normally.
  try {
    PI_Write(g_ch_after, "%d", 22);
    g_after_code.store(0);
  } catch (const pilot::PilotError& e) {
    g_after_code.store(static_cast<int>(e.code()));
  }
  return 0;
}

TEST_F(CopilotFailoverTest, StandbyTakesOverAndFailsOnlyTheInflightRequest) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // copilotN alias: node 0's Co-Pilot dies on the first request it serves.
  opts.args = {"-pifault=copilot_crash@copilot0:op=1"};
  int victim_read_code = -1;
  int after_value = -1;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* spe = PI_CreateSPE(writes_across_the_crash, PI_MAIN, 0);
        g_ch_victim = PI_CreateChannel(spe, PI_MAIN);  // Table I type 2
        g_ch_after = PI_CreateChannel(spe, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(spe, 0, nullptr);
        int v = -1;
        try {
          PI_Read(g_ch_victim, "%d", &v);
        } catch (const pilot::PilotError& e) {
          victim_read_code = static_cast<int>(e.code());
          EXPECT_NE(e.detail().find("Co-Pilot"), std::string::npos)
              << "diagnostic must name the crashed Co-Pilot: " << e.detail();
        }
        PI_Read(g_ch_after, "%d", &after_value);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << "a survivable Co-Pilot crash aborted the job: "
                          << r.abort_reason;
  // The in-flight request fails cleanly at both ends ...
  EXPECT_EQ(g_victim_code.load(), static_cast<int>(PI_COPILOT_FAULT));
  EXPECT_EQ(victim_read_code, static_cast<int>(PI_COPILOT_FAULT));
  // ... and the standby serves everything issued after the takeover.
  EXPECT_EQ(g_after_code.load(), 0);
  EXPECT_EQ(after_value, 22);
  EXPECT_EQ(failover_count(), 1u);
  EXPECT_EQ(machine.copilot_failover_count(0), 1);
}

TEST_F(CopilotFailoverTest, WildcardSiteCrashesTheOnlyCopilot) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=copilot_crash@*:op=1"};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* spe = PI_CreateSPE(writes_across_the_crash, PI_MAIN, 0);
        g_ch_victim = PI_CreateChannel(spe, PI_MAIN);
        g_ch_after = PI_CreateChannel(spe, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(spe, 0, nullptr);
        int v = -1;
        try {
          PI_Read(g_ch_victim, "%d", &v);
        } catch (const pilot::PilotError&) {
        }
        PI_Read(g_ch_after, "%d", &v);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(failover_count(), 1u);
  EXPECT_EQ(machine.copilot_failover_count(0), 1);
}

TEST_F(CopilotFailoverTest, CleanRunsNeverTripTheFailoverMachinery) {
  cluster::Cluster machine = one_cell();
  int v1 = -1;
  int v2 = -1;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(writes_across_the_crash, PI_MAIN, 0);
    g_ch_victim = PI_CreateChannel(spe, PI_MAIN);
    g_ch_after = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_Read(g_ch_victim, "%d", &v1);
    PI_Read(g_ch_after, "%d", &v2);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(v1, 11);
  EXPECT_EQ(v2, 22);
  EXPECT_EQ(g_victim_code.load(), 0);
  EXPECT_EQ(g_after_code.load(), 0);
  EXPECT_EQ(failover_count(), 0u);
  EXPECT_EQ(machine.copilot_failover_count(0), 0);
}

}  // namespace
