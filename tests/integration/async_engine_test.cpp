// async_engine_test.cpp — handle lifecycle and readiness multiplexing.
//
// The completion engine's contract beyond "the payload arrives":
//  * a rank-side write settles at submission — PI_Test returns 1 on the
//    first poll, and the marshalled arguments may be reused immediately;
//  * a harvested handle is dead — a second PI_Wait is a usage error, not
//    a crash or a hang;
//  * handles are thread-affine — harvesting another thread's handle is a
//    usage error (the rule MPI requests live by);
//  * an SPE program keeps at most 4 operations in flight (the inbound-
//    mailbox depth) — the fifth submission is a usage error;
//  * PI_WaitAny harvests exactly one settled handle and leaves the rest
//    live; PI_SelectAny multiplexes bundles and handle sets in one call;
//  * PI_Select / PI_TrySelect on a bundle with a dead writer return that
//    channel's index so the caller's PI_Read surfaces PI_SPE_FAULT /
//    PI_COPILOT_FAULT — readiness includes "ready to fail", never a hang.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/cellpilot.hpp"
#include "core/faultplan.hpp"
#include "pilot/errors.hpp"

namespace {

using cellpilot::faults::FaultPlan;
using pilot::ErrorCode;
using pilot::PilotError;

PI_CHANNEL* g_a = nullptr;
PI_CHANNEL* g_b = nullptr;
PI_CHANNEL* g_go = nullptr;
PI_CHANNEL* g_go2 = nullptr;
PI_CHANNEL* g_res = nullptr;
std::atomic<PI_OP*> g_handle{nullptr};
std::atomic<int> g_code{-1};
std::atomic<int> g_cap_code{-1};

cluster::Cluster one_cell(unsigned ranks = 1) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(ranks));
  return cluster::Cluster(std::move(config));
}

class AsyncEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_a = g_b = g_go = g_go2 = g_res = nullptr;
    g_handle.store(nullptr);
    g_code.store(-1);
    g_cap_code.store(-1);
  }
  ~AsyncEngineTest() override { FaultPlan::global().reset(); }
};

// --- settle-at-submission + double wait ----------------------------------

int settled_reader(int /*arg*/, void* /*ptr*/) {
  int v = 0;
  PI_Read(g_a, "%d", &v);
  g_code.store(v);
  return 0;
}

TEST_F(AsyncEngineTest, RankWriteSettlesAtSubmissionAndDoubleWaitIsCaught) {
  cluster::Cluster machine = one_cell(2);
  int first_poll = -1;
  int double_wait_code = -1;
  std::string double_wait_detail;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* reader = PI_CreateProcess(settled_reader, 0, nullptr);
    g_a = PI_CreateChannel(PI_MAIN, reader);
    PI_StartAll();
    PI_HANDLE h = PI_WriteAsync(g_a, "%d", 77);
    first_poll = PI_Test(h);  // settles at submission: harvests right here
    try {
      PI_Wait(h);
    } catch (const PilotError& e) {
      double_wait_code = static_cast<int>(e.code());
      double_wait_detail = e.detail();
    }
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(g_code.load(), 77);
  EXPECT_EQ(first_poll, 1) << "a rank-side write must be settled by submit";
  EXPECT_EQ(double_wait_code, static_cast<int>(ErrorCode::kUsage));
  EXPECT_NE(double_wait_detail.find("already harvested"), std::string::npos)
      << double_wait_detail;
}

// --- thread affinity ------------------------------------------------------

int foreign_harvester(int /*arg*/, void* /*ptr*/) {
  PI_Read(g_go, "");  // the handle is published before this token arrives
  int code = 0;
  try {
    PI_Wait(g_handle.load());
  } catch (const PilotError& e) {
    code = static_cast<int>(e.code());
  }
  PI_Write(g_res, "%d", code);
  int v = 0;
  PI_Read(g_a, "%d", &v);  // drain the payload the foreign handle carried
  return 0;
}

TEST_F(AsyncEngineTest, HandlesAreThreadAffine) {
  cluster::Cluster machine = one_cell(2);
  int foreign_code = -1;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* other = PI_CreateProcess(foreign_harvester, 0, nullptr);
    g_a = PI_CreateChannel(PI_MAIN, other);
    g_go = PI_CreateChannel(PI_MAIN, other);
    g_res = PI_CreateChannel(other, PI_MAIN);
    PI_StartAll();
    PI_HANDLE h = PI_WriteAsync(g_a, "%d", 5);
    g_handle.store(h);
    PI_Write(g_go, "");
    PI_Read(g_res, "%d", &foreign_code);
    PI_Wait(h);  // the owner may still harvest its own handle
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(foreign_code, static_cast<int>(ErrorCode::kUsage));
}

// --- the SPE outstanding-operation cap ------------------------------------

PI_SPE_PROGRAM(capped_writer) {
  PI_HANDLE inflight[4];
  for (int i = 0; i < 4; ++i) {
    inflight[i] = PI_WriteAsync(g_a, "%d", 10 + i);
  }
  try {
    (void)PI_WriteAsync(g_a, "%d", 99);  // fifth: over the mailbox depth
  } catch (const PilotError& e) {
    g_cap_code.store(static_cast<int>(e.code()));
  }
  for (int i = 0; i < 4; ++i) PI_Wait(inflight[i]);
  return 0;
}

TEST_F(AsyncEngineTest, FifthOutstandingSpeOperationIsAUsageError) {
  cluster::Cluster machine = one_cell();
  int sum = 0;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(capped_writer, PI_MAIN, 0);
    g_a = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    for (int i = 0; i < 4; ++i) {
      int v = 0;
      PI_Read(g_a, "%d", &v);
      sum += v;
    }
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(sum, 10 + 11 + 12 + 13) << "the four capped writes must land";
  EXPECT_EQ(g_cap_code.load(), static_cast<int>(ErrorCode::kUsage));
}

// --- PI_WaitAny ------------------------------------------------------------

PI_SPE_PROGRAM(eager_writer) {
  PI_Write(g_a, "%d", 111);
  return 0;
}

PI_SPE_PROGRAM(gated_writer) {
  PI_Read(g_go, "");
  PI_Write(g_b, "%d", 222);
  return 0;
}

TEST_F(AsyncEngineTest, WaitAnyHarvestsTheSettledHandleAndLeavesTheRest) {
  cluster::Cluster machine = one_cell();
  int va = 0;
  int vb = 0;
  int first = -1;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* eager = PI_CreateSPE(eager_writer, PI_MAIN, 0);
    PI_PROCESS* gated = PI_CreateSPE(gated_writer, PI_MAIN, 1);
    g_a = PI_CreateChannel(eager, PI_MAIN);
    g_b = PI_CreateChannel(gated, PI_MAIN);
    g_go = PI_CreateChannel(PI_MAIN, gated);
    PI_StartAll();
    PI_RunSPE(eager, 0, nullptr);
    PI_RunSPE(gated, 0, nullptr);
    PI_HANDLE handles[2] = {PI_ReadAsync(g_a, "%d", &va),
                            PI_ReadAsync(g_b, "%d", &vb)};
    first = PI_WaitAny(handles, 2);
    PI_Write(g_go, "");  // only now may the second writer proceed
    PI_Wait(handles[1]);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(first, 0) << "only the eager writer's read could settle first";
  EXPECT_EQ(va, 111);
  EXPECT_EQ(vb, 222);
}

// --- PI_SelectAny over a bundle and a handle set ---------------------------

PI_SPE_PROGRAM(gated_bundle_writer) {
  PI_Read(arg1 == 0 ? g_go : g_go2, "");
  PI_Write(arg1 == 0 ? g_a : g_b, "%d", 1000 + arg1);
  return 0;
}

PI_SPE_PROGRAM(eager_handle_writer) {
  PI_Write(g_res, "%d", 333);
  return 0;
}

TEST_F(AsyncEngineTest, SelectAnyMultiplexesBundleChannelsAndHandles) {
  cluster::Cluster machine = one_cell();
  int hv = 0;
  int ready = -1;
  int later = -1;
  int bundled = 0;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w0 = PI_CreateSPE(gated_bundle_writer, PI_MAIN, 0);
    PI_PROCESS* w1 = PI_CreateSPE(gated_bundle_writer, PI_MAIN, 1);
    PI_PROCESS* wh = PI_CreateSPE(eager_handle_writer, PI_MAIN, 2);
    g_a = PI_CreateChannel(w0, PI_MAIN);
    g_b = PI_CreateChannel(w1, PI_MAIN);
    g_res = PI_CreateChannel(wh, PI_MAIN);
    PI_CHANNEL* gated[2] = {g_a, g_b};
    PI_BUNDLE* bundle = PI_CreateBundle(PI_SELECT, gated, 2);
    g_go = PI_CreateChannel(PI_MAIN, w0);
    g_go2 = PI_CreateChannel(PI_MAIN, w1);
    PI_StartAll();
    PI_RunSPE(w0, 0, nullptr);
    PI_RunSPE(w1, 1, nullptr);
    PI_RunSPE(wh, 0, nullptr);
    PI_HANDLE handles[1] = {PI_ReadAsync(g_res, "%d", &hv)};
    // Both bundle writers are gated: only the handle can become ready.
    ready = PI_SelectAny(bundle, handles, 1);
    EXPECT_EQ(hv, 0) << "a settled handle is not harvested by PI_SelectAny";
    PI_Wait(handles[0]);
    // Release exactly one bundle writer; the next PI_SelectAny (with no
    // handles at all) must name its channel.
    PI_Write(g_go, "");
    later = PI_SelectAny(bundle, nullptr, 0);
    PI_Read(PI_GetBundleChannel(bundle, later), "%d", &bundled);
    // Drain the other writer so the job ends cleanly.
    PI_Write(g_go2, "");
    int rest = 0;
    PI_Read(later == 0 ? g_b : g_a, "%d", &rest);
    EXPECT_EQ(rest, later == 0 ? 1001 : 1000);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(ready, 2) << "bundle_size + handle index names the handle";
  EXPECT_EQ(hv, 333);
  EXPECT_EQ(later, 0);
  EXPECT_EQ(bundled, 1000);
}

// --- select over dead writers ---------------------------------------------

PI_SPE_PROGRAM(doomed_select_writer) {
  // The fault plan kills this program at its first channel request.
  PI_Write(g_b, "%d", 17);
  return 0;
}

PI_SPE_PROGRAM(quiet_writer) {
  return 0;  // exits cleanly without ever writing its channel
}

TEST_F(AsyncEngineTest, SelectSurfacesSpeFaultInsteadOfHanging) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=spe_crash@node0.cell0.spe0:op=1"};
  int selected = -1;
  int try_selected = -2;
  int read_code = -1;
  std::string read_detail;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* doomed = PI_CreateSPE(doomed_select_writer, PI_MAIN, 0);
        PI_PROCESS* quiet = PI_CreateSPE(quiet_writer, PI_MAIN, 1);
        g_a = PI_CreateChannel(quiet, PI_MAIN);
        g_b = PI_CreateChannel(doomed, PI_MAIN);
        PI_CHANNEL* chans[2] = {g_a, g_b};
        PI_BUNDLE* bundle = PI_CreateBundle(PI_SELECT, chans, 2);
        PI_StartAll();
        PI_RunSPE(doomed, 0, nullptr);  // first launch -> node0.cell0.spe0
        PI_RunSPE(quiet, 0, nullptr);
        selected = PI_Select(bundle);       // must not hang on the death
        try_selected = PI_TrySelect(bundle);  // dead writer counts ready
        int v = 0;
        try {
          PI_Read(g_b, "%d", &v);
        } catch (const pilot::PilotError& e) {
          read_code = static_cast<int>(e.code());
          read_detail = e.detail();
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << "a survivable SPE fault aborted the job: "
                          << r.abort_reason;
  EXPECT_EQ(selected, 1) << "select must name the dead writer's channel";
  EXPECT_EQ(try_selected, 1);
  EXPECT_EQ(read_code, static_cast<int>(PI_SPE_FAULT));
  EXPECT_NE(read_detail.find("Table I type"), std::string::npos)
      << read_detail;
}

PI_SPE_PROGRAM(victim_writer) {
  // The Co-Pilot dies serving this write: the program sees the fault
  // itself and exits cleanly; the rank side learns through select + read.
  try {
    PI_Write(g_b, "%d", 11);
  } catch (const pilot::PilotError&) {
  }
  return 0;
}

TEST_F(AsyncEngineTest, SelectSurfacesCopilotFaultInsteadOfHanging) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=copilot_crash@copilot0:op=1"};
  int selected = -1;
  int read_code = -1;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* victim = PI_CreateSPE(victim_writer, PI_MAIN, 0);
        PI_PROCESS* quiet = PI_CreateSPE(quiet_writer, PI_MAIN, 1);
        g_a = PI_CreateChannel(quiet, PI_MAIN);
        g_b = PI_CreateChannel(victim, PI_MAIN);
        PI_CHANNEL* chans[2] = {g_a, g_b};
        PI_BUNDLE* bundle = PI_CreateBundle(PI_SELECT, chans, 2);
        PI_StartAll();
        PI_RunSPE(victim, 0, nullptr);
        PI_RunSPE(quiet, 0, nullptr);
        selected = PI_Select(bundle);
        int v = 0;
        try {
          PI_Read(g_b, "%d", &v);
        } catch (const pilot::PilotError& e) {
          read_code = static_cast<int>(e.code());
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << "a survivable Co-Pilot crash aborted the job: "
                          << r.abort_reason;
  EXPECT_EQ(selected, 1) << "select must name the poisoned channel";
  EXPECT_EQ(read_code, static_cast<int>(PI_COPILOT_FAULT));
}

}  // namespace
