// End-to-end fault injection and recovery: an SPE dying mid-transfer must
// surface as PI_SPE_FAULT at every peer (not a hang, not an abort), an
// SPE<->SPE circular wait must be named by the deadlock service via the
// Co-Pilot's proxy events, and supervision must recover transient stalls
// while converting hopeless ones into PI_SPE_TIMEOUT.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>

#include "core/cellpilot.hpp"
#include "core/copilot.hpp"
#include "core/faultplan.hpp"
#include "pilot/errors.hpp"

namespace {

using cellpilot::faults::FaultPlan;
using cellpilot::supervision::fault_count;
using cellpilot::supervision::recovered_count;
using cellpilot::supervision::reset_counters;
using cellpilot::supervision::timeout_count;

PI_CHANNEL* g_ch_main = nullptr;  ///< SPE -> PI_MAIN
PI_CHANNEL* g_ch_spe = nullptr;   ///< SPE -> SPE
PI_CHANNEL* g_ch_back = nullptr;  ///< second SPE -> SPE (cycle tests)
std::atomic<int> g_peer_code{-1};
std::atomic<int> g_writer_code{-1};
std::atomic<int> g_peer_value{0};

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset_counters();
    g_peer_code.store(-1);
    g_writer_code.store(-1);
    g_peer_value.store(0);
  }
  ~FaultRecoveryTest() override { FaultPlan::global().reset(); }
};

// --- SPE crash mid-transfer ----------------------------------------------

PI_SPE_PROGRAM(doomed_writer) {
  // The fault plan kills this program at its first channel request; the
  // writes below never reach the Co-Pilot.
  PI_Write(g_ch_main, "%d", 17);
  PI_Write(g_ch_spe, "%d", 17);
  return 0;
}

PI_SPE_PROGRAM(surviving_peer) {
  int v = 0;
  try {
    PI_Read(g_ch_spe, "%d", &v);
  } catch (const pilot::PilotError& e) {
    g_peer_code.store(static_cast<int>(e.code()));
    return 0;
  }
  return 1;
}

TEST_F(FaultRecoveryTest, SpeCrashMidTransferFailsEveryPeerWithoutAbort) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=spe_crash@node0.cell0.spe0:op=1"};
  int main_code = -1;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* doomed = PI_CreateSPE(doomed_writer, PI_MAIN, 0);
        PI_PROCESS* peer = PI_CreateSPE(surviving_peer, PI_MAIN, 1);
        g_ch_main = PI_CreateChannel(doomed, PI_MAIN);  // Table I type 2
        g_ch_spe = PI_CreateChannel(doomed, peer);      // Table I type 4
        PI_StartAll();
        PI_RunSPE(doomed, 0, nullptr);  // first launch -> node0.cell0.spe0
        PI_RunSPE(peer, 0, nullptr);
        int v = 0;
        try {
          PI_Read(g_ch_main, "%d", &v);
        } catch (const pilot::PilotError& e) {
          main_code = static_cast<int>(e.code());
          EXPECT_NE(e.detail().find("Table I type"), std::string::npos)
              << "diagnostic must name the channel type: " << e.detail();
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << "a survivable SPE fault aborted the job: "
                          << r.abort_reason;
  EXPECT_EQ(main_code, static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(g_peer_code.load(), static_cast<int>(PI_SPE_FAULT));
  EXPECT_GE(fault_count(), 1u);
}

// --- SPE<->SPE deadlock through Co-Pilot proxy events --------------------

PI_SPE_PROGRAM(reads_forward) {
  int v = 0;
  PI_Read(g_ch_spe, "%d", &v);  // never written: half of the cycle
  return 0;
}

PI_SPE_PROGRAM(reads_backward) {
  int v = 0;
  PI_Read(g_ch_back, "%d", &v);  // never written: the other half
  return 0;
}

TEST_F(FaultRecoveryTest, SpeToSpeCircularWaitIsNamedByTheService) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.deadlock_service = true;
  cluster::Cluster machine(std::move(config));
  cellpilot::RunOptions opts;
  opts.args = {"-pisvc=d"};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* a = PI_CreateSPE(reads_forward, PI_MAIN, 0);
        PI_PROCESS* b = PI_CreateSPE(reads_backward, PI_MAIN, 1);
        g_ch_spe = PI_CreateChannel(b, a);   // a reads what b never writes
        g_ch_back = PI_CreateChannel(a, b);  // b reads what a never writes
        g_ch_main = PI_CreateChannel(a, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(a, 0, nullptr);
        PI_RunSPE(b, 0, nullptr);
        int v = 0;
        PI_Read(g_ch_main, "%d", &v);  // released by the abort
        PI_StopMain(0);
        return 0;
      },
      opts);
  EXPECT_TRUE(r.aborted) << "the SPE<->SPE cycle was never detected";
  EXPECT_NE(r.abort_reason.find("deadlock detected"), std::string::npos)
      << "actual reason: " << r.abort_reason;
  // Both SPE processes (ids 1 and 2) must be named in the diagnostic.
  EXPECT_NE(r.abort_reason.find("P1"), std::string::npos) << r.abort_reason;
  EXPECT_NE(r.abort_reason.find("P2"), std::string::npos) << r.abort_reason;
}

// --- transient stall: retry/backoff recovers -----------------------------

PI_SPE_PROGRAM(stalled_writer) {
  try {
    PI_Write(g_ch_main, "%d", 23);
  } catch (const pilot::PilotError& e) {
    g_writer_code.store(static_cast<int>(e.code()));
    return 0;
  }
  g_writer_code.store(0);
  return 0;
}

TEST_F(FaultRecoveryTest, TransientMailboxStallRecoversWithinRetryBudget) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // 600us stall on the request's second mailbox word: past the 500us
  // deadline, inside the first doubled retry window (1000us).
  opts.args = {"-pifault=mbox_stall@node0.cell0.spe0:op=2,delay=600us"};
  int value = 0;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* spe = PI_CreateSPE(stalled_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(spe, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(spe, 0, nullptr);
        PI_Read(g_ch_main, "%d", &value);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(value, 23) << "recovered transfer must still deliver the data";
  EXPECT_EQ(g_writer_code.load(), 0);
  EXPECT_GE(recovered_count(), 1u) << "the run never actually stalled";
  EXPECT_EQ(timeout_count(), 0u);
}

// --- hopeless stall: timeout after exhausted retries ---------------------

TEST_F(FaultRecoveryTest, ExhaustedRetriesBecomeSpeTimeoutAtEveryPeer) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // 50ms stall: beyond the whole ladder (500us * 2^3 = 4000us).
  opts.args = {"-pifault=mbox_stall@node0.cell0.spe0:op=2,delay=50ms"};
  int main_code = -1;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* spe = PI_CreateSPE(stalled_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(spe, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(spe, 0, nullptr);
        int v = 0;
        try {
          PI_Read(g_ch_main, "%d", &v);
        } catch (const pilot::PilotError& e) {
          main_code = static_cast<int>(e.code());
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(main_code, static_cast<int>(PI_SPE_TIMEOUT));
  EXPECT_EQ(g_writer_code.load(), static_cast<int>(PI_SPE_TIMEOUT));
  EXPECT_GE(timeout_count(), 1u);
}

// --- seed sweep: recovery must hold under many fault plans ---------------
//
// The driver (tests/CMakeLists.txt) registers this suite eight times, once
// per CELLPILOT_FAULT_SEED=1..8.  The spec below omits `op=`, so the plan
// derives the kill ordinal from the seed (range [1, 16]) — every seed kills
// the SPE at a *different* operation, and the recovery contract (fault
// surfaced to the peer, no abort, counters advanced) must hold for all of
// them, not one lucky default.

class SeedSweepTest : public FaultRecoveryTest {};

PI_SPE_PROGRAM(seeded_doomed_writer) {
  // Twenty writes generate comfortably more than 16 operations at the
  // site, so the seed-derived ordinal always lands before the program
  // would finish on its own.
  try {
    for (int i = 0; i < 20; ++i) PI_Write(g_ch_main, "%d", i);
  } catch (const pilot::PilotError&) {
    // Some seeds kill mid-handshake: the write that was in flight then
    // completes with an error on the already-dead SPE's thread.
  }
  return 0;
}

TEST_F(SeedSweepTest, SpeCrashSurfacesAsFaultUnderThisSeed) {
  const char* env = std::getenv("CELLPILOT_FAULT_SEED");
  const std::string seed = (env != nullptr && env[0] != '\0') ? env : "1";

  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=seed=" + seed + ";spe_crash@node0.cell0.spe0"};
  int clean_reads = 0;
  int faulted_reads = 0;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* doomed = PI_CreateSPE(seeded_doomed_writer, PI_MAIN, 0);
        g_ch_main = PI_CreateChannel(doomed, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(doomed, 0, nullptr);
        for (int i = 0; i < 20; ++i) {
          int v = -1;
          try {
            PI_Read(g_ch_main, "%d", &v);
            EXPECT_EQ(v, i) << "seed " << seed;
            ++clean_reads;
          } catch (const pilot::PilotError& e) {
            EXPECT_EQ(static_cast<int>(e.code()),
                      static_cast<int>(PI_SPE_FAULT))
                << "seed " << seed;
            ++faulted_reads;
            break;  // the channel is poisoned for good
          }
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << "seed " << seed
                          << " aborted the job: " << r.abort_reason;
  EXPECT_EQ(faulted_reads, 1) << "seed " << seed
                              << " never surfaced the crash";
  EXPECT_LT(clean_reads, 20) << "seed " << seed << " never killed the SPE";
  EXPECT_GE(fault_count(), 1u) << "seed " << seed;
}

}  // namespace
