// quickstart_test.cpp — the paper's Figures 3 + 4 program, end to end.
//
// Two Cell nodes; PI_MAIN (node 0's PPE) starts a sender SPE, a second PPE
// process (node 1) starts a receiver SPE, and an array of 100 ints crosses
// a type-5 channel (SPE -> Co-Pilot -> network -> Co-Pilot -> SPE).
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>

#include "core/cellpilot.hpp"

namespace {

PI_CHANNEL* betweenSPEs = nullptr;
PI_PROCESS* recvSPE = nullptr;

std::array<int, 100> g_received{};
std::atomic<bool> g_receiver_ran{false};

PI_SPE_PROGRAM(spe_send) {
  int array[100];
  for (int i = 0; i < 100; ++i) array[i] = i;
  PI_Write(betweenSPEs, "%100d", array);
  return 0;
}

PI_SPE_PROGRAM(spe_recv) {
  int array[100];
  PI_Read(betweenSPEs, "%*d", 100, array);
  std::memcpy(g_received.data(), array, sizeof array);
  g_receiver_ran.store(true);
  return 0;
}

int recvFunc(int /*arg*/, void* /*ptr*/) {
  PI_RunSPE(recvSPE, 0, nullptr);
  return 0;
}

int app_main(int argc, char** argv) {
  const int n = PI_Configure(&argc, &argv);
  EXPECT_GE(n, 2);

  PI_PROCESS* recvPPE = PI_CreateProcess(recvFunc, 0, nullptr);
  PI_PROCESS* sendSPE = PI_CreateSPE(spe_send, PI_MAIN, 0);
  recvSPE = PI_CreateSPE(spe_recv, recvPPE, 0);
  betweenSPEs = PI_CreateChannel(sendSPE, recvSPE);

  PI_StartAll();
  PI_RunSPE(sendSPE, 0, nullptr);
  PI_StopMain(0);
  return 0;
}

TEST(Quickstart, Figure3And4ProgramDeliversArrayAcrossType5Channel) {
  g_received.fill(-1);
  g_receiver_ran.store(false);

  cluster::Cluster machine(cluster::ClusterConfig::two_cells());
  const cellpilot::RunResult result = cellpilot::run(machine, app_main);

  ASSERT_FALSE(result.aborted) << result.abort_reason;
  ASSERT_TRUE(result.errors.empty()) << result.errors.front();
  EXPECT_EQ(result.status, 0);
  ASSERT_TRUE(g_receiver_ran.load());
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(g_received[static_cast<std::size_t>(i)], i) << "index " << i;
  }
}

}  // namespace
