// loadgen_chaos_test.cpp — the load generator under fault cocktails.
//
// The chaos mode's promise: the same seeded mix keeps flowing through a
// Co-Pilot crash (standby failover) and through SPE deaths (supervised
// respawn), and the JSON reports the p99 *inside* the recovery window
// separately from steady state.  The degraded window is the supervision
// layer's virtual-time recovery span, so these runs are as deterministic
// as clean ones and the assertions below are exact, not statistical.
#include "benchkit/loadgen.hpp"

#include <string>

#include "gtest/gtest.h"

namespace {

namespace loadgen = benchkit::loadgen;

loadgen::Config chaos_config(const std::string& spec, int respawn_budget) {
  loadgen::Config cfg;
  cfg.seed = 1;
  cfg.horizon = simtime::ms(20);
  cfg.load_points_rps = {8000};
  cfg.chaos_spec = spec;
  cfg.respawn_budget = respawn_budget;
  return cfg;
}

/// True when at least one master-driven class captured samples inside the
/// degraded window.
bool has_degraded_split(const loadgen::PointResult& point) {
  for (int c = 0; c < loadgen::kClassCount; ++c) {
    if (point.cls[c].degraded_samples > 0 &&
        point.cls[c].degraded_p99_us > 0) {
      return true;
    }
  }
  return false;
}

TEST(LoadgenChaos, CopilotCrashFailsOverAndReportsDegradedWindow) {
  const loadgen::Config cfg = chaos_config("copilot_crash@*:op=5", 0);
  const loadgen::PointResult point = loadgen::run_point(cfg, 8000);

  ASSERT_FALSE(point.aborted) << point.abort_reason;
  EXPECT_GT(point.failovers, 0u) << "cocktail never killed a Co-Pilot";
  // Liveness: the mix kept completing through the takeover.
  for (int c = 0; c < loadgen::kClassCount; ++c) {
    EXPECT_GT(point.cls[c].completed, 0u) << loadgen::class_name(c);
  }
  // The recovery span landed on the virtual timeline and samples fell
  // inside it: degraded p99 is tracked separately from steady state.
  EXPECT_GT(point.degraded_end, point.degraded_begin);
  EXPECT_TRUE(has_degraded_split(point));
  for (int c = 0; c < 3; ++c) {  // master-driven classes carry the split
    const auto& r = point.cls[c];
    if (r.degraded_samples == 0) continue;
    EXPECT_GT(r.steady_p99_us, 0.0) << loadgen::class_name(c);
    EXPECT_NE(r.steady_p99_us, r.degraded_p99_us)
        << loadgen::class_name(c)
        << ": window split did not separate the distributions";
  }
}

TEST(LoadgenChaos, SpeCrashRespawnsAndKeepsTheMixFlowing) {
  const loadgen::Config cfg = chaos_config("spe_crash_mid@*:op=25", 8);
  const loadgen::PointResult point = loadgen::run_point(cfg, 8000);

  ASSERT_FALSE(point.aborted) << point.abort_reason;
  EXPECT_GT(point.respawns, 0u) << "cocktail never killed an SPE";
  EXPECT_GT(point.recovered_ops, 0u)
      << "respawn happened but no ops replayed from the journal";
  for (int c = 0; c < loadgen::kClassCount; ++c) {
    EXPECT_GT(point.cls[c].completed, 0u) << loadgen::class_name(c);
  }
  EXPECT_GT(point.degraded_end, point.degraded_begin);
  EXPECT_TRUE(has_degraded_split(point));
}

TEST(LoadgenChaos, DegradedWindowReachesTheJson) {
  const loadgen::Config cfg = chaos_config("copilot_crash@*:op=5", 0);
  loadgen::SweepResult sweep;
  sweep.points.push_back(loadgen::run_point(cfg, 8000));
  for (int c = 0; c < loadgen::kClassCount; ++c) {
    sweep.capacity_rps[c] = 0;
  }
  const std::string json = loadgen::to_bench_json(cfg, sweep).to_string();
  EXPECT_NE(json.find("\"degraded_p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"steady_p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"degraded_samples\""), std::string::npos);
  EXPECT_EQ(json.find("\"failovers\": 0"), std::string::npos)
      << "meta claims zero failovers for a run that failed over:\n"
      << json.substr(0, 400);
}

}  // namespace
