// End-to-end message-fault recovery: with msg_drop / msg_corrupt / msg_dup
// / msg_reorder armed on the Co-Pilot -> PI_MAIN link, every channel still
// delivers its payloads bit-for-bit and in order — the reliable sublayer
// absorbs the faults transparently — while PI_GetChannelStats exposes the
// retransmit/duplicate/corruption work the wire actually did.
#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "core/cellpilot.hpp"
#include "core/copilot.hpp"
#include "core/faultplan.hpp"
#include "mpisim/reliable.hpp"
#include "pilot/errors.hpp"

namespace {

using cellpilot::faults::FaultPlan;

constexpr int kValues = 8;

PI_CHANNEL* g_ch = nullptr;
std::atomic<int> g_writer_code{-1};

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

class ReliableRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cellpilot::supervision::reset_counters();
    g_writer_code.store(-1);
  }
  ~ReliableRecoveryTest() override { FaultPlan::global().reset(); }
};

PI_SPE_PROGRAM(burst_writer) {
  try {
    for (int i = 0; i < kValues; ++i) PI_Write(g_ch, "%d", 100 + i);
  } catch (const pilot::PilotError& e) {
    g_writer_code.store(static_cast<int>(e.code()));
    return 0;
  }
  g_writer_code.store(0);
  return 0;
}

/// Runs the burst over a Table I type 2 channel (SPE -> PI_MAIN: the data
/// relay rides the Co-Pilot -> main MPI link, rank 1 -> rank 0) under
/// `fault_spec`, asserts bit-for-bit in-order delivery, and returns the
/// channel's stats.
PI_CHANNEL_STATS run_burst(const std::string& fault_spec) {
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=" + fault_spec};
  PI_CHANNEL_STATS stats{};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* spe = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch = PI_CreateChannel(spe, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(spe, 0, nullptr);
        for (int i = 0; i < kValues; ++i) {
          int v = -1;
          PI_Read(g_ch, "%d", &v);
          EXPECT_EQ(v, 100 + i) << "payload " << i << " damaged or reordered";
        }
        PI_StopMain(0);
        EXPECT_EQ(PI_GetChannelStats(g_ch, &stats), 0);
        return 0;
      },
      opts);
  EXPECT_FALSE(r.aborted) << "message faults must never abort: "
                          << r.abort_reason;
  EXPECT_EQ(g_writer_code.load(), 0) << "writer saw an error";
  EXPECT_EQ(stats.messages, static_cast<unsigned long long>(kValues));
  return stats;
}

TEST_F(ReliableRecoveryTest, DroppedFramesAreRetransmittedTransparently) {
  // Ordinal window [1, 51) on the Co-Pilot -> main link: the early channel
  // relays are guaranteed to lose at least one delivery attempt.
  const PI_CHANNEL_STATS stats = run_burst("msg_drop@1->0:op=1,count=50");
  EXPECT_GE(stats.retransmits, 1u) << "no frame was ever actually lost";
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.faults, 0u);
}

TEST_F(ReliableRecoveryTest, CorruptedFramesAreCaughtByCrcAndResent) {
  const PI_CHANNEL_STATS stats = run_burst("msg_corrupt@1->0:op=1,count=50");
  EXPECT_GE(stats.corrupt_detected, 1u) << "the CRC never fired";
  EXPECT_GE(stats.retransmits, 1u)
      << "a caught corruption must cost a retransmission";
}

TEST_F(ReliableRecoveryTest, DuplicatedFramesAreDeliveredExactlyOnce) {
  const PI_CHANNEL_STATS stats = run_burst("msg_dup@1->0:op=1,count=50");
  EXPECT_GE(stats.duplicates, 1u) << "no duplicate ever reached the window";
  // run_burst already proved each value arrived exactly once, in order.
}

TEST_F(ReliableRecoveryTest, ReorderedFramesAreReleasedInOrder) {
  mpisim::reliable::reset_totals();
  run_burst("msg_reorder@1->0:op=1,count=50");
  // Reorders are absorbed below the channel layer (the window re-sorts by
  // link sequence), so the evidence lives in the transport totals.
  EXPECT_GE(mpisim::reliable::totals().reorders, 1u)
      << "no frame was ever actually held back";
}

TEST_F(ReliableRecoveryTest, FaultCocktailAcrossAllKindsKeepsParity) {
  const PI_CHANNEL_STATS stats = run_burst(
      "seed=11;msg_drop@*:op=3,count=2;msg_corrupt@*:op=7,count=2;"
      "msg_dup@*:op=5;msg_reorder@*:op=9,count=3");
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.faults, 0u);
}

TEST_F(ReliableRecoveryTest, NonMessagePlansLeaveTheWirePathUntouched) {
  // A plan with only SPE-side rules must not arm the reliable layer: the
  // historical raw wire path (and its exact virtual timings) stays.
  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=mbox_stall@node0.cell0.spe0:op=2,delay=100us"};
  std::atomic<bool> framed{true};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* spe = PI_CreateSPE(burst_writer, PI_MAIN, 0);
        g_ch = PI_CreateChannel(spe, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(spe, 0, nullptr);
        for (int i = 0; i < kValues; ++i) {
          int v = -1;
          PI_Read(g_ch, "%d", &v);
        }
        framed.store(mpisim::reliable::enabled());
        PI_StopMain(0);
        return 0;
      },
      opts);
  EXPECT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_FALSE(framed.load()) << "a non-message plan armed the wire framing";
}

}  // namespace
