// Full-testbed integration: a job spanning the paper's entire SHARCNET
// configuration — 8 dual-PowerXCell blades and 4 Xeon nodes — with a
// worker process on every node, an SPE child under every Cell worker, and
// collective bundles tying it together.  This is the "utilize every
// available processor" scenario the Pilot papers aim at.
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "core/cellpilot.hpp"

namespace {

// 8 Cell workers + PI_MAIN's own SPE child; Xeon nodes contribute
// 4+4+8+8 = 24 ranks of which we employ 8 as pure-CPU workers.
constexpr int kCellWorkers = 8;   // one per blade (worker 0 shares with MAIN)
constexpr int kXeonWorkers = 8;
constexpr int kWorkers = kCellWorkers + kXeonWorkers;

PI_PROCESS* g_workers[kWorkers];
PI_PROCESS* g_spe_children[kCellWorkers];
PI_CHANNEL* g_spe_task[kCellWorkers];
PI_CHANNEL* g_spe_result[kCellWorkers];
PI_CHANNEL* g_bcast[kWorkers];
PI_CHANNEL* g_results[kWorkers];

PI_SPE_PROGRAM(testbed_spe) {
  // Each Cell worker's SPE squares the broadcast seed.
  double seed = 0;
  PI_Read(g_spe_task[arg1], "%lf", &seed);
  PI_Write(g_spe_result[arg1], "%lf", seed * seed);
  return 0;
}

int testbed_worker(int index, void* /*arg*/) {
  double seed = 0;
  PI_Read(g_bcast[index], "%lf", &seed);

  double value = 0;
  if (index < kCellWorkers) {
    // Offload to this blade's SPE.
    PI_RunSPE(g_spe_children[index], index, nullptr);
    PI_Write(g_spe_task[index], "%lf", seed + index);
    PI_Read(g_spe_result[index], "%lf", &value);
  } else {
    value = (seed + index) * (seed + index);  // Xeon computes locally
  }
  PI_Write(g_results[index], "%lf", value);
  return 0;
}

int testbed_main(int argc, char* argv[]) {
  const int available = PI_Configure(&argc, &argv);
  EXPECT_GE(available, kWorkers + 1);

  for (int w = 0; w < kWorkers; ++w) {
    g_workers[w] = PI_CreateProcess(testbed_worker, w, nullptr);
    g_bcast[w] = PI_CreateChannel(PI_MAIN, g_workers[w]);
    g_results[w] = PI_CreateChannel(g_workers[w], PI_MAIN);
  }
  for (int c = 0; c < kCellWorkers; ++c) {
    g_spe_children[c] = PI_CreateSPE(testbed_spe, g_workers[c], c);
    g_spe_task[c] = PI_CreateChannel(g_workers[c], g_spe_children[c]);
    g_spe_result[c] = PI_CreateChannel(g_spe_children[c], g_workers[c]);
  }
  PI_BUNDLE* bcast = PI_CreateBundle(PI_BROADCAST, g_bcast, kWorkers);
  PI_BUNDLE* gather = PI_CreateBundle(PI_GATHER, g_results, kWorkers);

  PI_StartAll();

  const double seed = 2.0;
  PI_Broadcast(bcast, "%lf", seed);
  std::array<double, kWorkers> values{};
  PI_Gather(gather, "%lf", values.data());

  for (int w = 0; w < kWorkers; ++w) {
    const double expect = (seed + w) * (seed + w);
    EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(w)], expect)
        << "worker " << w;
  }
  PI_StopMain(0);
  return 0;
}

TEST(FullTestbed, PaperClusterRunsHybridJobAcrossEveryNodeKind) {
  // Cell workers' ranks: blade i contributes 1 rank; MAIN shares blade 0.
  cluster::ClusterConfig config = cluster::ClusterConfig::paper_testbed();
  // Give blade 0 a second rank so worker 0 is a PPE too (MAIN is rank 0).
  config.nodes[0].ranks = 2;
  cluster::Cluster machine(std::move(config));
  EXPECT_EQ(machine.world_size(),
            machine.user_rank_count() + 8);  // 8 Co-Pilots ride along

  const auto r = cellpilot::run(machine, testbed_main);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(r.status, 0);
}

TEST(FullTestbed, RepeatedRunsAreDeterministicAcrossTheWholeMachine) {
  auto run_once = [] {
    cluster::ClusterConfig config = cluster::ClusterConfig::paper_testbed();
    config.nodes[0].ranks = 2;
    cluster::Cluster machine(std::move(config));
    const auto r = cellpilot::run(machine, testbed_main);
    EXPECT_FALSE(r.aborted) << r.abort_reason;
    return machine.world().clock(0).now();
  };
  const simtime::SimTime first = run_once();
  EXPECT_GT(first, 0);
  EXPECT_EQ(run_once(), first);
}

}  // namespace
