// pitop_test.cpp — the telemetry console and its stall/saturation
// detector, binary level (path injected as PITOP_BIN, same harness as
// slogate_test).
//
// Fixture-level tests pin the detector semantics (a delivery drought with
// net queue growth is a stall; sparse-but-healthy traffic is not) and the
// exit-code contract: 0 render/agreement, 1 disagreement with the trace
// oracle, 2 usage or malformed input.  Binary-level acceptance runs the
// real chaos_sweep blade-kill subject telemetry-armed (CHAOS_SWEEP_BIN)
// and requires pitop to flag the recovery window and the trace oracle to
// agree with exact-span overlap — plus byte-identical telemetry across two
// seeded runs, and the empty-env disarm baselines of every observability
// session.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

class PitopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: two tests of this binary may run in separate
    // processes at once under a parallel ctest, and both shell out to
    // chaos_sweep writing tel.json/out.txt — a shared directory races.
    dir_ = ::testing::TempDir() + "pitop_test_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "/";
    std::system(("mkdir -p " + dir_).c_str());
  }

  std::string path(const std::string& name) const { return dir_ + name; }

  void write(const std::string& name, const std::string& text) const {
    std::ofstream f(path(name), std::ios::trunc | std::ios::binary);
    f << text;
  }

  std::string slurp(const std::string& name) const {
    std::ifstream f(path(name), std::ios::binary);
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
  }

  /// Runs a command under the test directory; returns the exit code and
  /// captures combined stdout+stderr.
  int run_cmd(const std::string& cmd, std::string* output = nullptr) const {
    const std::string full = "cd " + dir_ + " && { " + cmd + " ; } > " +
                             path("out.txt") + " 2>&1";
    const int status = std::system(full.c_str());
    if (output != nullptr) *output = slurp("out.txt");
    return WEXITSTATUS(status);
  }

  int run_pitop(const std::string& args, std::string* output = nullptr) const {
    return run_cmd(std::string(PITOP_BIN) + " " + args, output);
  }

  std::string dir_;
};

// A telemetry report with one unambiguous stall: traffic at window 0,
// a five-window delivery drought while the replay journal climbs 1 -> 8,
// then traffic resumes at window 6.
const char kStalledTelemetry[] = R"({
  "bench": "telemetry",
  "unit": "virtual_ns",
  "windowNs": 50000,
  "jobs": 1,
  "rows": [
    {"job": 1, "kind": "journal_len", "route": 0, "channel": -1,
     "entity": "node0.copilot", "win": 0, "count": 1, "sum": 1, "min": 1,
     "max": 1},
    {"job": 1, "kind": "journal_len", "route": 0, "channel": -1,
     "entity": "node0.copilot", "win": 5, "count": 3, "sum": 18, "min": 4,
     "max": 8},
    {"job": 1, "kind": "delivered", "route": 2, "channel": 0,
     "entity": "node0.copilot", "win": 0, "count": 1, "sum": 4, "min": 4,
     "max": 4},
    {"job": 1, "kind": "delivered", "route": 2, "channel": 0,
     "entity": "node0.copilot", "win": 6, "count": 1, "sum": 4, "min": 4,
     "max": 4}
  ]
})";

// The same shape without queue growth: sparse traffic alone (deliveries
// nine windows apart, flat gauges) is healthy, not a stall.
const char kSparseHealthyTelemetry[] = R"({
  "bench": "telemetry",
  "unit": "virtual_ns",
  "windowNs": 50000,
  "jobs": 1,
  "rows": [
    {"job": 1, "kind": "mailbox_depth", "route": 0, "channel": -1,
     "entity": "node0.copilot", "win": 0, "count": 2, "sum": 2, "min": 1,
     "max": 1},
    {"job": 1, "kind": "mailbox_depth", "route": 0, "channel": -1,
     "entity": "node0.copilot", "win": 9, "count": 2, "sum": 2, "min": 1,
     "max": 1},
    {"job": 1, "kind": "delivered", "route": 2, "channel": 0,
     "entity": "node0.copilot", "win": 0, "count": 1, "sum": 4, "min": 4,
     "max": 4},
    {"job": 1, "kind": "delivered", "route": 2, "channel": 0,
     "entity": "node0.copilot", "win": 9, "count": 1, "sum": 4, "min": 4,
     "max": 4}
  ]
})";

/// One Chrome-trace event line of the kind the runner writes.
std::string trace_line(const std::string& name, double ts_us, double dur_us,
                       const std::string& entity) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":%.3f,"
                "\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"cellpilot\","
                "\"args\":{\"entity\":\"%s\",\"channel\":-1,\"route\":0,"
                "\"bytes\":0,\"aux\":0}},\n",
                ts_us, dur_us, name.c_str(), entity.c_str());
  return buf;
}

// --- console mode ----------------------------------------------------------

TEST_F(PitopTest, RendersBladesRoutesAndTheStallSpan) {
  write("tel.json", kStalledTelemetry);
  std::string out;
  EXPECT_EQ(run_pitop("tel.json", &out), 0) << out;
  EXPECT_NE(out.find("pitop: window 50000 ns, 1 jobs"), std::string::npos)
      << out;
  EXPECT_NE(out.find("blade node0"), std::string::npos) << out;
  EXPECT_NE(out.find("journal_len"), std::string::npos) << out;
  EXPECT_NE(out.find("route type 2"), std::string::npos) << out;
  EXPECT_NE(out.find("delivered msgs"), std::string::npos) << out;
  EXPECT_NE(out.find("stall span [1..5]"), std::string::npos) << out;
}

TEST_F(PitopTest, SparseHealthyTrafficIsNotAStall) {
  write("tel.json", kSparseHealthyTelemetry);
  std::string out;
  EXPECT_EQ(run_pitop("tel.json", &out), 0) << out;
  EXPECT_NE(out.find("stall spans: none"), std::string::npos)
      << "a delivery gap without queue growth must not be flagged:\n"
      << out;
}

// --- cross-oracle mode ------------------------------------------------------

TEST_F(PitopTest, OverlappingRecoveryEventExplainsTheStall) {
  write("tel.json", kStalledTelemetry);
  // blade_restore spanning 100..200 us = windows 2..4, inside [1..5].
  write("tr.json", trace_line("copilot_service", 10, 5, "node0.copilot") +
                       trace_line("blade_restore", 100, 100, "node0"));
  std::string out;
  EXPECT_EQ(run_pitop("tel.json --check-trace tr.json", &out), 0) << out;
  EXPECT_NE(
      out.find("stall [1..5]: explained by blade_restore node0 [2..4]"),
      std::string::npos)
      << out;
  EXPECT_NE(out.find("trace oracle agrees"), std::string::npos) << out;
}

TEST_F(PitopTest, NonOverlappingOracleLeavesTheStallUnexplained) {
  write("tel.json", kStalledTelemetry);
  // The only recovery event sits at window 100, far from the stall.
  write("tr.json", trace_line("spe_respawn", 5000, 10, "node0.cell0.spe0"));
  std::string out;
  EXPECT_EQ(run_pitop("tel.json --check-trace tr.json", &out), 1) << out;
  EXPECT_NE(out.find("UNEXPLAINED"), std::string::npos) << out;
  EXPECT_NE(out.find("1 unexplained stall spans"), std::string::npos) << out;
}

TEST_F(PitopTest, UsageAndBadInputsExitTwo) {
  std::string out;
  EXPECT_EQ(run_pitop("", &out), 2);
  EXPECT_NE(out.find("usage:"), std::string::npos) << out;
  EXPECT_EQ(run_pitop("missing.json", &out), 2);
  EXPECT_EQ(run_pitop("a.json --not-check b.json", &out), 2);

  write("empty.json", "");
  EXPECT_EQ(run_pitop("empty.json", &out), 2);

  write("notel.json", "{\"bench\": \"loadgen\", \"rows\": []}");
  EXPECT_EQ(run_pitop("notel.json", &out), 2);
  EXPECT_NE(out.find("not a telemetry report"), std::string::npos) << out;

  write("tel.json", kStalledTelemetry);
  write("empty_trace.json", "");
  EXPECT_EQ(run_pitop("tel.json --check-trace empty_trace.json", &out), 2);
  write("no_events.json", "just some text\n");
  EXPECT_EQ(run_pitop("tel.json --check-trace no_events.json", &out), 2);
  EXPECT_NE(out.find("no trace events"), std::string::npos) << out;
}

// --- acceptance: the real blade-kill subject -------------------------------

/// The chaos_sweep checkpointed blade-kill subject, telemetry- and
/// trace-armed at a 50 us window: the blade dies mid-burst, deliveries
/// dry up while the journal and parked queues climb, the restore brings
/// traffic back — pitop must flag exactly that span and the trace oracle
/// must account for it.
TEST_F(PitopTest, ChaosBladeKillStallIsFlaggedAndExplainedByTheTrace) {
  const std::string env =
      "CELLPILOT_CHAOS_SUBJECT=ckpt:local "
      "CELLPILOT_TELEMETRY=tel.json CELLPILOT_TELEMETRY_EVERY=50 "
      "CELLPILOT_TRACE=tr.json ";
  std::string out;
  ASSERT_EQ(run_cmd(env + std::string(CHAOS_SWEEP_BIN) + " 1", &out), 0)
      << out;
  const std::string first = slurp("tel.json");
  ASSERT_FALSE(first.empty()) << "chaos run left no telemetry report";

  EXPECT_EQ(run_pitop("tel.json --check-trace tr.json", &out), 0) << out;
  EXPECT_NE(out.find("explained by"), std::string::npos)
      << "the blade-kill recovery window must be flagged and attributed:\n"
      << out;
  EXPECT_EQ(out.find("UNEXPLAINED"), std::string::npos) << out;

  // Same seed, same bytes — chaos cocktail included.
  ASSERT_EQ(run_cmd(env + std::string(CHAOS_SWEEP_BIN) + " 1", &out), 0)
      << out;
  EXPECT_EQ(first, slurp("tel.json"))
      << "telemetry must be byte-identical across same-seed chaos runs";
}

// --- empty-env disarm baselines (binary level) ------------------------------

TEST_F(PitopTest, EmptyObservabilityEnvKeepsRunsDisarmedWithANote) {
  const std::string subject = "CELLPILOT_CHAOS_SUBJECT=respawn:2 ";
  std::string baseline_out;
  ASSERT_EQ(run_cmd(subject + std::string(CHAOS_SWEEP_BIN) + " 1 2>/dev/null",
                    &baseline_out),
            0);

  std::remove(path("tel.json").c_str());
  std::remove(path("tr.json").c_str());
  const std::string empties =
      "CELLPILOT_TELEMETRY= CELLPILOT_TRACE= CELLPILOT_METRICS= "
      "CELLPILOT_FLIGHTREC= ";
  std::string combined;
  ASSERT_EQ(
      run_cmd(subject + empties + std::string(CHAOS_SWEEP_BIN) + " 1 2> err.txt",
              &combined),
      0);
  EXPECT_EQ(combined, baseline_out)
      << "empty env values must leave stdout bit-for-bit identical";
  const std::string err = slurp("err.txt");
  EXPECT_NE(err.find("ignoring empty CELLPILOT_TELEMETRY"),
            std::string::npos)
      << err;
  EXPECT_NE(err.find("ignoring empty CELLPILOT_TRACE"), std::string::npos)
      << err;
  EXPECT_NE(err.find("ignoring empty CELLPILOT_METRICS"), std::string::npos)
      << err;
  EXPECT_NE(err.find("ignoring empty CELLPILOT_FLIGHTREC"),
            std::string::npos)
      << err;
  EXPECT_TRUE(slurp("tel.json").empty())
      << "an empty CELLPILOT_TELEMETRY must not create a report file";
  EXPECT_TRUE(slurp("tr.json").empty());
}

}  // namespace
