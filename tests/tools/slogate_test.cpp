// slogate_test.cpp — the SLO gate, library and binary.
//
// Library-level tests pin the gate semantics (one-sided tolerances, row
// matching, capacity and chaos meta); binary-level tests run the real
// `slogate` executable (path injected as SLOGATE_BIN) and pin the exit
// codes CI depends on: 0 pass, 1 regression, 2 usage/missing/malformed —
// including the --update-baseline round trip.
#include "benchkit/slo.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace {

namespace slo = benchkit::slo;

// --- library ---------------------------------------------------------------

const char kBaseline[] = R"({
  "bench": "loadgen",
  "seed": 1,
  "failovers": 0,
  "capacity_read_rps": 8000,
  "rows": [
    {"load_rps": 8000, "class": "read", "p99_us": 100, "achieved_rps": 1000,
     "degraded_samples": 0, "degraded_p99_us": 0},
    {"load_rps": 8000, "class": "sync_write", "p99_us": 200,
     "achieved_rps": 2000, "degraded_samples": 0, "degraded_p99_us": 0}
  ]
})";

slo::Doc parse_ok(const std::string& text) {
  slo::Doc doc;
  std::string error;
  EXPECT_TRUE(slo::parse(text, &doc, &error)) << error;
  return doc;
}

/// A candidate built from the baseline with one read-row field replaced.
std::string candidate_with(const std::string& key, double value) {
  std::string text = kBaseline;
  const std::string needle = "\"" + key + "\": ";
  const std::size_t at = text.find(needle);
  EXPECT_NE(at, std::string::npos);
  const std::size_t start = at + needle.size();
  std::size_t end = start;
  while (end < text.size() && text[end] != ',' && text[end] != '}' &&
         text[end] != '\n') {
    ++end;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", value);
  return text.substr(0, start) + buf + text.substr(end);
}

TEST(SloParse, RoundTripsTheBenchjsonSubset) {
  const slo::Doc doc = parse_ok(kBaseline);
  std::string bench;
  EXPECT_TRUE(slo::get_string(doc.meta, "bench", &bench));
  EXPECT_EQ(bench, "loadgen");
  double cap = 0;
  EXPECT_TRUE(slo::get_number(doc.meta, "capacity_read_rps", &cap));
  EXPECT_EQ(cap, 8000);
  ASSERT_EQ(doc.rows.size(), 2u);
  std::string cls;
  EXPECT_TRUE(slo::get_string(doc.rows[0], "class", &cls));
  EXPECT_EQ(cls, "read");
  EXPECT_FALSE(slo::get_number(doc.rows[0], "absent_key", &cap));
}

TEST(SloParse, MalformedInputGivesPositionedError) {
  slo::Doc doc;
  std::string error;
  EXPECT_FALSE(slo::parse("{\"bench\": }", &doc, &error));
  EXPECT_NE(error.find("byte"), std::string::npos) << error;
  EXPECT_FALSE(slo::parse("", &doc, &error));
  EXPECT_FALSE(slo::parse("[1,2,3]", &doc, &error));
  // Trailing garbage after a valid document is malformed too.
  EXPECT_FALSE(slo::parse(std::string(kBaseline) + "x", &doc, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(SloGate, PassesWithinTolerance) {
  const slo::Doc baseline = parse_ok(kBaseline);
  // p99 100 -> 140 stays under 100*1.25+50; capacity and rate unchanged.
  const slo::Doc candidate = parse_ok(candidate_with("p99_us", 140));
  const slo::GateResult result =
      slo::gate(baseline, candidate, slo::Tolerances{});
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.issues.empty());
}

TEST(SloGate, FailsOnP99Regression) {
  const slo::Doc baseline = parse_ok(kBaseline);
  const slo::Doc candidate = parse_ok(candidate_with("p99_us", 500));
  const slo::GateResult result =
      slo::gate(baseline, candidate, slo::Tolerances{});
  ASSERT_FALSE(result.ok);
  ASSERT_EQ(result.issues.size(), 1u);
  EXPECT_NE(result.issues[0].where.find("class=read"), std::string::npos);
  EXPECT_NE(result.issues[0].message.find("p99_us"), std::string::npos);
}

TEST(SloGate, FasterIsNeverARegression) {
  const slo::Doc baseline = parse_ok(kBaseline);
  const slo::Doc candidate = parse_ok(candidate_with("p99_us", 1));
  EXPECT_TRUE(slo::gate(baseline, candidate, slo::Tolerances{}).ok);
}

TEST(SloGate, FailsOnThroughputDrop) {
  const slo::Doc baseline = parse_ok(kBaseline);
  const slo::Doc candidate = parse_ok(candidate_with("achieved_rps", 800));
  const slo::GateResult result =
      slo::gate(baseline, candidate, slo::Tolerances{});
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.issues[0].message.find("achieved_rps"),
            std::string::npos);
}

TEST(SloGate, FailsOnCapacityDrop) {
  const slo::Doc baseline = parse_ok(kBaseline);
  const slo::Doc candidate =
      parse_ok(candidate_with("capacity_read_rps", 4000));
  const slo::GateResult result =
      slo::gate(baseline, candidate, slo::Tolerances{});
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.issues[0].message.find("capacity_read_rps"),
            std::string::npos);
}

TEST(SloGate, FailsOnMissingRow) {
  const slo::Doc baseline = parse_ok(kBaseline);
  slo::Doc candidate = parse_ok(kBaseline);
  candidate.rows.pop_back();
  const slo::GateResult result =
      slo::gate(baseline, candidate, slo::Tolerances{});
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.issues[0].message.find("missing"), std::string::npos);
}

TEST(SloGate, TolerancesAreOverridable) {
  const slo::Doc baseline = parse_ok(kBaseline);
  const slo::Doc candidate = parse_ok(candidate_with("p99_us", 500));
  slo::Tolerances generous;
  generous.p99_frac = 5.0;
  EXPECT_TRUE(slo::gate(baseline, candidate, generous).ok);
}

TEST(SloGate, ChaosMetaMustKeepFiring) {
  // A baseline that recorded failovers is a chaos baseline; a candidate
  // with zero means the cocktail stopped firing and the point is dead
  // weight — that is a gate failure, not a lucky pass.
  slo::Doc baseline = parse_ok(kBaseline);
  for (auto& [key, value] : baseline.meta) {
    if (key == "failovers") value = 2.0;
  }
  const slo::Doc candidate = parse_ok(kBaseline);  // failovers: 0
  const slo::GateResult result =
      slo::gate(baseline, candidate, slo::Tolerances{});
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.issues[0].message.find("failovers"), std::string::npos);
}

TEST(SloGate, DegradedP99GatedWhenBothRunsCaptureIt) {
  slo::Doc baseline = parse_ok(kBaseline);
  slo::Doc candidate = parse_ok(kBaseline);
  for (auto& row : baseline.rows) {
    for (auto& [key, value] : row) {
      if (key == "degraded_samples") value = 10.0;
      if (key == "degraded_p99_us") value = 1000.0;
    }
  }
  for (auto& row : candidate.rows) {
    for (auto& [key, value] : row) {
      if (key == "degraded_samples") value = 12.0;
      if (key == "degraded_p99_us") value = 9000.0;  // 9x: beyond 100%+50
    }
  }
  const slo::GateResult result =
      slo::gate(baseline, candidate, slo::Tolerances{});
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.issues[0].message.find("degraded_p99_us"),
            std::string::npos);

  // Candidate without degraded samples: a note, not a failure.
  slo::Doc quiet = parse_ok(kBaseline);
  const slo::GateResult noted =
      slo::gate(baseline, quiet, slo::Tolerances{});
  EXPECT_TRUE(noted.ok);
  EXPECT_FALSE(noted.notes.empty());
}

// --- binary ----------------------------------------------------------------

class SlogateBinary : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "slogate_test/";
    std::system(("mkdir -p " + dir_).c_str());
  }

  std::string path(const std::string& name) const { return dir_ + name; }

  void write(const std::string& name, const std::string& text) const {
    std::ofstream f(path(name), std::ios::trunc);
    f << text;
  }

  /// Runs slogate and returns its exit code; captures combined output.
  int run(const std::string& args, std::string* output = nullptr) const {
    const std::string cmd =
        std::string(SLOGATE_BIN) + " " + args + " > " + path("out.txt") +
        " 2>&1";
    const int status = std::system(cmd.c_str());
    if (output != nullptr) {
      std::ifstream f(path("out.txt"));
      std::ostringstream ss;
      ss << f.rdbuf();
      *output = ss.str();
    }
    return WEXITSTATUS(status);
  }

  std::string dir_;
};

TEST_F(SlogateBinary, PassRegressAndUpdateRoundTrip) {
  write("baseline.json", kBaseline);
  write("good.json", candidate_with("p99_us", 120));
  write("bad.json", candidate_with("p99_us", 500));

  std::string out;
  EXPECT_EQ(run("--baseline " + path("baseline.json") + " " +
                    path("good.json"),
                &out),
            0)
      << out;
  EXPECT_NE(out.find("OK"), std::string::npos);

  EXPECT_EQ(run("--baseline " + path("baseline.json") + " " +
                    path("bad.json"),
                &out),
            1)
      << out;
  EXPECT_NE(out.find("FAIL"), std::string::npos);
  EXPECT_NE(out.find("p99_us"), std::string::npos);

  // --update-baseline: the regressing run becomes the new baseline, and
  // gating it against itself passes — the round trip.
  EXPECT_EQ(run("--baseline " + path("baseline.json") +
                    " --update-baseline " + path("bad.json"),
                &out),
            0)
      << out;
  EXPECT_EQ(run("--baseline " + path("baseline.json") + " " +
                    path("bad.json"),
                &out),
            0)
      << out;
}

TEST_F(SlogateBinary, MissingAndMalformedBaselinesFailClearly) {
  write("good.json", kBaseline);
  write("broken.json", "{\"bench\": \"loadgen\", \"rows\": [");

  std::string out;
  EXPECT_EQ(run("--baseline " + path("nonexistent.json") + " " +
                    path("good.json"),
                &out),
            2)
      << out;
  EXPECT_NE(out.find("cannot open"), std::string::npos) << out;

  EXPECT_EQ(run("--baseline " + path("broken.json") + " " +
                    path("good.json"),
                &out),
            2)
      << out;
  EXPECT_NE(out.find("malformed"), std::string::npos) << out;

  // Usage errors: no baseline, unknown flag.
  EXPECT_EQ(run(path("good.json")), 2);
  EXPECT_EQ(run("--frobnicate"), 2);
}

}  // namespace
