// Unit + property tests for the cost model.
#include "simtime/cost_model.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simtime;

TEST(CostModel, DefaultModelValidates) {
  EXPECT_NO_THROW(default_cost_model().validate());
}

TEST(CostModel, ZeroModelValidatesAndIsFree) {
  const CostModel z = zero_cost_model();
  EXPECT_NO_THROW(z.validate());
  EXPECT_EQ(z.mpi_network_message(1600, CoreKind::kPpe, CoreKind::kPpe), 0);
  EXPECT_EQ(z.dma_transfer(1 << 20), 0);
  EXPECT_EQ(z.mapped_copy(4096), 0);
}

TEST(CostModel, NegativeLatencyRejected) {
  CostModel m = default_cost_model();
  m.net_latency = -1;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CostModel, ZeroRequestWordsRejected) {
  CostModel m = default_cost_model();
  m.copilot_request_words = 0;
  EXPECT_THROW(m.validate(), std::invalid_argument);
}

TEST(CostModel, CoreKindNames) {
  EXPECT_STREQ(to_string(CoreKind::kPpe), "ppe");
  EXPECT_STREQ(to_string(CoreKind::kXeon), "xeon");
  EXPECT_STREQ(to_string(CoreKind::kSpe), "spe");
}

TEST(CostModel, PpeEndpointsAreSlowerThanXeon) {
  const CostModel m = default_cost_model();
  EXPECT_GT(m.mpi_network_message(1, CoreKind::kPpe, CoreKind::kPpe),
            m.mpi_network_message(1, CoreKind::kXeon, CoreKind::kXeon));
}

TEST(CostModel, NetworkMessageSplitsIntoLegs) {
  const CostModel m = default_cost_model();
  const auto legs = m.mpi_leg_costs(1600, CoreKind::kPpe, CoreKind::kXeon,
                                    /*same_node=*/false);
  EXPECT_EQ(legs.sender + legs.transit + legs.receiver,
            m.mpi_network_message(1600, CoreKind::kPpe, CoreKind::kXeon));
}

TEST(CostModel, LocalMessageHasNoTransit) {
  const CostModel m = default_cost_model();
  const auto legs =
      m.mpi_leg_costs(64, CoreKind::kPpe, CoreKind::kPpe, /*same_node=*/true);
  EXPECT_EQ(legs.transit, 0);
  EXPECT_GT(legs.sender, 0);
}

TEST(CostModel, LocalTransportIsCheaperThanNetwork) {
  const CostModel m = default_cost_model();
  EXPECT_LT(m.mpi_local_message(1600),
            m.mpi_network_message(1600, CoreKind::kPpe, CoreKind::kPpe));
}

TEST(CostModel, DmaChunksAbove16K) {
  const CostModel m = default_cost_model();
  const SimTime one = m.dma_transfer(16 * 1024);
  const SimTime two = m.dma_transfer(16 * 1024 + 1);
  EXPECT_EQ(two - one, m.dma_per_chunk + m.dma_per_byte);
}

TEST(CostModel, RequestCostsScaleWithWordCount) {
  CostModel m = default_cost_model();
  const SimTime four = m.copilot_consume_request();
  m.copilot_request_words = 8;
  const SimTime eight = m.copilot_consume_request();
  EXPECT_EQ(eight - four, 4 * m.mbox_ppe_read);
}

/// Property: every composite cost is monotone non-decreasing in size.
class CostMonotonicity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CostMonotonicity, CompositesGrowWithSize) {
  const CostModel m = default_cost_model();
  const std::size_t n = GetParam();
  EXPECT_LE(m.mpi_network_message(n, CoreKind::kPpe, CoreKind::kPpe),
            m.mpi_network_message(n + 16, CoreKind::kPpe, CoreKind::kPpe));
  EXPECT_LE(m.mpi_local_message(n), m.mpi_local_message(n + 16));
  EXPECT_LE(m.dma_transfer(n), m.dma_transfer(n + 16));
  EXPECT_LE(m.mapped_copy(n), m.mapped_copy(n + 16));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CostMonotonicity,
                         ::testing::Values(0, 1, 15, 16, 100, 1600, 4096,
                                           16 * 1024, 16 * 1024 + 1,
                                           256 * 1024));

}  // namespace
