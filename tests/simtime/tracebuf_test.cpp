// tracebuf_test.cpp — the ring-buffered trace engine in isolation.
//
// The engine's contract is what makes the whole trace layer trustworthy:
// zero-cost when disarmed, refcounted arming, inline entity copies, and a
// drain order that depends only on recorded fields (never host scheduling).
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "simtime/sim_time.hpp"
#include "simtime/tracebuf.hpp"

namespace {

namespace tb = simtime::tracebuf;
using simtime::us;

/// Balanced arm/disarm for a test scope; drains leftovers on exit so one
/// test's events never leak into the next.
struct ScopedArm {
  ScopedArm() {
    tb::clear();
    tb::arm();
  }
  ~ScopedArm() {
    tb::disarm();
    tb::clear();
  }
};

TEST(TraceBuf, DisarmedRecordIsDropped) {
  tb::clear();
  ASSERT_FALSE(tb::armed());
  tb::record(tb::Kind::kUser, "nobody", us(1), us(2));
  {
    ScopedArm armed;
    EXPECT_TRUE(tb::drain().empty());
  }
}

TEST(TraceBuf, ArmIsReferenceCounted) {
  tb::clear();
  tb::arm();
  tb::arm();
  tb::disarm();
  EXPECT_TRUE(tb::armed()) << "one consumer still wants events";
  tb::disarm();
  EXPECT_FALSE(tb::armed());
  tb::clear();
}

TEST(TraceBuf, RecordedFieldsRoundTrip) {
  ScopedArm armed;
  tb::record(tb::Kind::kMpiSend, "node0.rank0", us(10), us(12), 64, 3, 1, 259);
  const auto events = tb::drain();
  ASSERT_EQ(events.size(), 1u);
  const tb::Event& e = events.front();
  EXPECT_EQ(e.kind, tb::Kind::kMpiSend);
  EXPECT_STREQ(e.entity, "node0.rank0");
  EXPECT_EQ(e.begin, us(10));
  EXPECT_EQ(e.end, us(12));
  EXPECT_EQ(e.bytes, 64u);
  EXPECT_EQ(e.channel, 3);
  EXPECT_EQ(e.route_type, 1);
  EXPECT_EQ(e.aux, 259);
}

TEST(TraceBuf, DrainClearsTheRings) {
  ScopedArm armed;
  tb::record(tb::Kind::kUser, "a", us(1), us(1));
  EXPECT_EQ(tb::drain().size(), 1u);
  EXPECT_TRUE(tb::drain().empty());
}

TEST(TraceBuf, OverlongEntityNamesAreTruncatedNotOverrun) {
  ScopedArm armed;
  const std::string longname(100, 'x');
  tb::record(tb::Kind::kUser, longname, us(1), us(1));
  const auto events = tb::drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(std::strlen(events.front().entity), tb::kEntityBytes - 1);
  EXPECT_EQ(std::string(events.front().entity),
            std::string(tb::kEntityBytes - 1, 'x'));
}

TEST(TraceBuf, DrainOrderIsCanonicalNotInsertionOrder) {
  // Record in deliberately shuffled order; drain must sort by
  // (begin, end, entity, kind, channel, aux, bytes).
  ScopedArm armed;
  tb::record(tb::Kind::kUser, "b", us(5), us(6));
  tb::record(tb::Kind::kUser, "a", us(5), us(6));
  tb::record(tb::Kind::kUser, "a", us(1), us(9));
  tb::record(tb::Kind::kMboxPush, "a", us(5), us(6));
  const auto events = tb::drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].begin, us(1));
  EXPECT_EQ(events[1].kind, tb::Kind::kMboxPush) << "kMboxPush sorts first";
  EXPECT_STREQ(events[2].entity, "a");
  EXPECT_STREQ(events[3].entity, "b");
}

TEST(TraceBuf, EventsFromManyThreadsLandInOneCanonicalDrain) {
  // Each thread records into its own ring; at quiescence the drain merges
  // all rings into the same canonical order regardless of which thread ran
  // first or which ring it happened to lease.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  auto run_once = [&] {
    ScopedArm armed;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
      workers.emplace_back([t] {
        for (int i = 0; i < kPerThread; ++i) {
          tb::record(tb::Kind::kUser, "worker" + std::to_string(t),
                     us(i), us(i + 1), static_cast<std::uint64_t>(t));
        }
      });
    }
    for (auto& w : workers) w.join();
    return tb::drain();
  };

  const auto first = run_once();
  const auto second = run_once();
  ASSERT_EQ(first.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].begin, second[i].begin) << "index " << i;
    EXPECT_EQ(first[i].bytes, second[i].bytes) << "index " << i;
    EXPECT_STREQ(first[i].entity, second[i].entity) << "index " << i;
  }
}

TEST(TraceBuf, KindNamesAreStableLowercaseTokens) {
  for (int k = 0; k < tb::kKindCount; ++k) {
    const char* name = tb::kind_name(static_cast<tb::Kind>(k));
    ASSERT_NE(name, nullptr);
    EXPECT_GT(std::strlen(name), 0u);
    for (const char* p = name; *p != '\0'; ++p) {
      EXPECT_TRUE((*p >= 'a' && *p <= 'z') || *p == '_')
          << "kind " << k << " name '" << name << "'";
    }
  }
  EXPECT_STREQ(tb::kind_name(tb::Kind::kMpiSend), "mpi_send");
  EXPECT_STREQ(tb::kind_name(tb::Kind::kCopilotPair), "copilot_pair");
}

}  // namespace
