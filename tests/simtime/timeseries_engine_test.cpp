// timeseries_engine_test.cpp — the windowed time-series registry under the
// telemetry layer: order-independent cell aggregates, virtual-time window
// bucketing, the refcounted arm/disarm contract shared with tracebuf and
// metrics, and the canonical drain/snapshot semantics pitop depends on.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "simtime/sim_time.hpp"
#include "simtime/timeseries.hpp"

namespace {

namespace ts = simtime::timeseries;

/// Every test starts and ends with a quiet, disarmed engine at the default
/// window so ordering between tests cannot leak state.
class TimeseriesEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ts::clear();
    ts::set_window(simtime::ms(1));
  }
  void TearDown() override {
    while (ts::armed()) ts::disarm();
    ts::clear();
    ts::set_window(simtime::ms(1));
  }
};

// --- cell aggregates -----------------------------------------------------

TEST_F(TimeseriesEngineTest, CellTracksCountSumMinMax) {
  ts::Cell cell;
  for (std::int64_t v : {7, -2, 0, 100}) cell.add(v);
  EXPECT_EQ(cell.count, 4u);
  EXPECT_EQ(cell.sum, 105);
  EXPECT_EQ(cell.min, -2);
  EXPECT_EQ(cell.max, 100);
}

TEST_F(TimeseriesEngineTest, CellAggregatesAreOrderIndependent) {
  // The determinism contract: two host threads may land samples in a
  // window in either order, so {count,sum,min,max} must not care.
  ts::Cell forward;
  ts::Cell backward;
  const std::int64_t values[] = {5, 1, 9, 9, 3};
  for (std::int64_t v : values) forward.add(v);
  for (int i = 4; i >= 0; --i) backward.add(values[i]);
  EXPECT_EQ(forward, backward);
}

TEST_F(TimeseriesEngineTest, FirstSampleSetsBothExtremes) {
  ts::Cell cell;
  cell.add(-7);
  EXPECT_EQ(cell.min, -7);
  EXPECT_EQ(cell.max, -7);
  EXPECT_EQ(cell.count, 1u);
}

// --- arm/disarm refcount -------------------------------------------------

TEST_F(TimeseriesEngineTest, ArmIsReferenceCounted) {
  EXPECT_FALSE(ts::armed());
  ts::arm();  // e.g. the telemetry session
  ts::arm();  // e.g. an overlapping scoped capture
  EXPECT_TRUE(ts::armed());
  ts::disarm();
  EXPECT_TRUE(ts::armed()) << "one consumer still wants samples";
  ts::disarm();
  EXPECT_FALSE(ts::armed());
  ts::disarm();  // underflow must be a no-op
  EXPECT_FALSE(ts::armed());
}

TEST_F(TimeseriesEngineTest, RecordIsANoOpWhileDisarmed) {
  ts::record(ts::Kind::kDelivered, 2, 1, "node0", simtime::us(1), 1);
  ts::arm();
  EXPECT_TRUE(ts::drain().empty());
}

// --- window bucketing ----------------------------------------------------

TEST_F(TimeseriesEngineTest, SamplesLandInTheirStampWindow) {
  ts::arm();
  ts::set_window(simtime::us(10));
  ts::record(ts::Kind::kMailboxDepth, 0, -1, "node0.copilot",
             simtime::us(3), 4);
  ts::record(ts::Kind::kMailboxDepth, 0, -1, "node0.copilot",
             simtime::us(9), 6);   // same window as the first
  ts::record(ts::Kind::kMailboxDepth, 0, -1, "node0.copilot",
             simtime::us(10), 2);  // boundary starts the next window
  ts::record(ts::Kind::kMailboxDepth, 0, -1, "node0.copilot",
             simtime::us(25), 1);
  const std::vector<ts::Series> series = ts::drain();
  ASSERT_EQ(series.size(), 1u);
  const auto& windows = series[0].windows;
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[0].first, 0);
  EXPECT_EQ(windows[0].second.count, 2u);
  EXPECT_EQ(windows[0].second.max, 6);
  EXPECT_EQ(windows[1].first, 1);
  EXPECT_EQ(windows[1].second.count, 1u);
  EXPECT_EQ(windows[2].first, 2);
  EXPECT_EQ(windows[2].second.min, 1);
}

TEST_F(TimeseriesEngineTest, WindowIsClampedToAtLeastOneNanosecond) {
  ts::set_window(0);
  EXPECT_EQ(ts::window(), 1);
  ts::set_window(-5);
  EXPECT_EQ(ts::window(), 1);
  ts::set_window(simtime::us(50));
  EXPECT_EQ(ts::window(), simtime::us(50));
}

TEST_F(TimeseriesEngineTest, NegativeStampsClampIntoWindowZero) {
  ts::arm();
  ts::record(ts::Kind::kSent, 0, -1, "x", -100, 1);
  const std::vector<ts::Series> series = ts::drain();
  ASSERT_EQ(series.size(), 1u);
  ASSERT_EQ(series[0].windows.size(), 1u);
  EXPECT_EQ(series[0].windows[0].first, 0);
}

// --- canonical drain/snapshot order --------------------------------------

TEST_F(TimeseriesEngineTest, DrainIsCanonicallyOrderedAndClears) {
  ts::arm();
  // Recorded deliberately out of canonical order.
  ts::record(ts::Kind::kSent, 3, 7, "zeta", simtime::us(1), 1);
  ts::record(ts::Kind::kDelivered, 3, 7, "zeta", simtime::us(1), 1);
  ts::record(ts::Kind::kDelivered, 1, 7, "zeta", simtime::us(1), 1);
  ts::record(ts::Kind::kDelivered, 1, 2, "zeta", simtime::us(1), 1);
  ts::record(ts::Kind::kDelivered, 1, 2, "alpha", simtime::us(1), 1);
  const std::vector<ts::Series> series = ts::drain();
  ASSERT_EQ(series.size(), 5u);
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_TRUE(series[i - 1].key < series[i].key)
        << "drain must sort by (kind, route, channel, entity), i=" << i;
  }
  EXPECT_EQ(series[0].key.entity, "alpha");
  EXPECT_TRUE(ts::drain().empty()) << "drain must clear the registry";
}

TEST_F(TimeseriesEngineTest, SnapshotCopiesWithoutClearing) {
  ts::arm();
  ts::record(ts::Kind::kJournalLen, 0, -1, "node0.copilot",
             simtime::us(5), 3);
  const std::vector<ts::Series> snap = ts::snapshot();
  ASSERT_EQ(snap.size(), 1u);
  const std::vector<ts::Series> again = ts::snapshot();
  ASSERT_EQ(again.size(), 1u);
  EXPECT_EQ(snap[0].key, again[0].key);
  EXPECT_EQ(snap[0].windows, again[0].windows);
  EXPECT_EQ(ts::drain().size(), 1u) << "snapshot must leave data in place";
}

TEST_F(TimeseriesEngineTest, ClearDropsSeriesButKeepsTheWindow) {
  ts::arm();
  ts::set_window(simtime::us(42));
  ts::record(ts::Kind::kNetStash, 0, -1, "0->1", simtime::us(1), 2);
  ts::clear();
  EXPECT_TRUE(ts::drain().empty());
  EXPECT_EQ(ts::window(), simtime::us(42));
}

// --- kind vocabulary -----------------------------------------------------

TEST_F(TimeseriesEngineTest, KindNamesAreStableTokens) {
  // The report JSON and pitop key on these strings; renaming one is a
  // format break, which is why the full table is pinned here.
  const char* expected[ts::kKindCount] = {
      "mailbox_depth", "pending_ops", "spe_pool_busy", "net_window",
      "net_stash",     "journal_len", "parked_ops",    "service_busy",
      "delivered",     "sent",        "retransmits",   "respawns",
  };
  for (int k = 0; k < ts::kKindCount; ++k) {
    EXPECT_STREQ(ts::kind_name(static_cast<ts::Kind>(k)), expected[k])
        << "kind " << k;
  }
}

}  // namespace
