// metrics_engine_test.cpp — the log-bucketed histogram registry under the
// metrics layer: bucket geometry, exact count/sum/min/max, percentile
// clamping, merge, the refcounted arm/disarm contract and the canonical
// drain/snapshot semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "simtime/metrics.hpp"

namespace {

namespace sm = simtime::metrics;
using sm::Histogram;

// --- bucket geometry -----------------------------------------------------

TEST(HistogramBuckets, IndexIsMonotonicAndBoundsBracketTheValue) {
  std::size_t prev = 0;
  for (std::int64_t v = 0; v < 100000; v = v < 256 ? v + 1 : v * 9 / 8) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev) << "index must never decrease (v=" << v << ")";
    prev = idx;
    EXPECT_LE(Histogram::bucket_lower_bound(idx), v);
    EXPECT_GT(Histogram::bucket_lower_bound(idx + 1), v)
        << "next bucket must start above v=" << v;
  }
}

TEST(HistogramBuckets, SmallValuesAreExact) {
  // Below 2^kSubBits the bucket IS the value; up to 2^(kSubBits+1) octaves
  // keep sub-bucket granularity 1, so representatives stay exact.
  for (std::int64_t v = 0; v < 2 * Histogram::kSubBuckets; ++v) {
    EXPECT_EQ(Histogram::bucket_lower_bound(Histogram::bucket_index(v)), v);
  }
}

TEST(HistogramBuckets, RelativeErrorIsBoundedBySubBucketWidth) {
  for (std::int64_t v = 1; v < (std::int64_t{1} << 40); v *= 3) {
    const std::int64_t lb =
        Histogram::bucket_lower_bound(Histogram::bucket_index(v));
    EXPECT_LE(v - lb, v / Histogram::kSubBuckets + 1)
        << "~3% relative error bound violated at v=" << v;
  }
}

// --- exact aggregates ----------------------------------------------------

TEST(HistogramAggregates, CountSumMinMaxAreExact) {
  Histogram h;
  std::uint64_t sum = 0;
  for (std::int64_t v : {7, 1, 999999, 35, 0, 123456789}) {
    h.add(v);
    sum += static_cast<std::uint64_t>(v);
  }
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.sum(), sum);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 123456789);
}

TEST(HistogramAggregates, EmptyReportsZeroes) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 0);
  EXPECT_EQ(h.percentile(50), 0);
}

TEST(HistogramAggregates, NegativeValuesClampToZero) {
  Histogram h;
  h.add(-5);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0);
}

// --- percentiles ---------------------------------------------------------

TEST(HistogramPercentiles, NearestRankOnExactBuckets) {
  // 1..60 all sit in exact (granularity-1) buckets, so nearest-rank is
  // exact: rank = ceil(count * p / 100), value = that rank's sample.
  Histogram h;
  for (std::int64_t v = 1; v <= 60; ++v) h.add(v);
  EXPECT_EQ(h.percentile(50), 30);
  EXPECT_EQ(h.percentile(99), 60);
  EXPECT_EQ(h.percentile(100), 60);
  EXPECT_EQ(h.percentile(1), 1);
}

TEST(HistogramPercentiles, AlwaysClampedIntoMinMax) {
  Histogram h;
  h.add(1000000);  // single sample in a coarse bucket
  for (int p : {0, 1, 50, 99, 100}) {
    EXPECT_GE(h.percentile(p), h.min());
    EXPECT_LE(h.percentile(p), h.max());
  }
  EXPECT_EQ(h.percentile(50), 1000000)
      << "single-sample percentile must be that sample";
}

// --- merge ---------------------------------------------------------------

TEST(HistogramMerge, MergeEqualsAddingAllValues) {
  Histogram a;
  Histogram b;
  Histogram all;
  for (std::int64_t v = 1; v < 5000; v *= 2) {
    a.add(v);
    all.add(v);
  }
  for (std::int64_t v = 3; v < 9000; v *= 3) {
    b.add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (int p : {1, 50, 90, 99, 100}) {
    EXPECT_EQ(a.percentile(p), all.percentile(p)) << "p=" << p;
  }
}

// --- registry: arm/disarm, record, drain, snapshot ------------------------

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { sm::clear(); }
  void TearDown() override { sm::clear(); }
};

TEST_F(MetricsRegistryTest, DisarmedRecordIsDropped) {
  ASSERT_FALSE(sm::armed());
  sm::record(sm::Kind::kMsgLatency, 1, 0, "rank0", 42);
  EXPECT_TRUE(sm::drain().empty());
}

TEST_F(MetricsRegistryTest, ArmDisarmIsRefcounted) {
  sm::arm();
  sm::arm();
  sm::disarm();
  EXPECT_TRUE(sm::armed()) << "one consumer still wants samples";
  sm::disarm();
  EXPECT_FALSE(sm::armed());
}

TEST_F(MetricsRegistryTest, DrainIsCanonicalAndClears) {
  sm::arm();
  // Recorded out of canonical order on purpose.
  sm::record(sm::Kind::kReadBlock, 2, 1, "rank0", 10);
  sm::record(sm::Kind::kMsgLatency, 2, 1, "spe1", 20);
  sm::record(sm::Kind::kMsgLatency, 1, 0, "rank0", 30);
  sm::record(sm::Kind::kMsgLatency, 1, 0, "rank0", 40);
  sm::disarm();

  const auto series = sm::drain();
  ASSERT_EQ(series.size(), 3u);
  // (kind, route, channel, entity) ascending.
  EXPECT_EQ(series[0].key.kind, sm::Kind::kMsgLatency);
  EXPECT_EQ(series[0].key.route_type, 1);
  EXPECT_EQ(series[0].key.entity, "rank0");
  EXPECT_EQ(series[0].hist.count(), 2u);
  EXPECT_EQ(series[0].hist.sum(), 70u);
  EXPECT_EQ(series[1].key.kind, sm::Kind::kMsgLatency);
  EXPECT_EQ(series[1].key.route_type, 2);
  EXPECT_EQ(series[1].key.entity, "spe1");
  EXPECT_EQ(series[2].key.kind, sm::Kind::kReadBlock);

  EXPECT_TRUE(sm::drain().empty()) << "drain must clear the registry";
}

TEST_F(MetricsRegistryTest, SnapshotCopiesWithoutClearing) {
  sm::arm();
  sm::record(sm::Kind::kCopilotService, 0, -1, "node0.copilot", 5);
  sm::disarm();

  const auto snap = sm::snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].key.entity, "node0.copilot");
  EXPECT_EQ(snap[0].hist.count(), 1u);

  const auto again = sm::drain();
  ASSERT_EQ(again.size(), 1u) << "snapshot must not consume the series";
}

TEST_F(MetricsRegistryTest, KindNamesAreStableTokens) {
  EXPECT_STREQ(sm::kind_name(sm::Kind::kMsgLatency), "msg_latency");
  EXPECT_STREQ(sm::kind_name(sm::Kind::kReadBlock), "read_block");
  EXPECT_STREQ(sm::kind_name(sm::Kind::kCopilotQueueWait),
               "copilot_queue_wait");
  EXPECT_STREQ(sm::kind_name(sm::Kind::kCopilotService), "copilot_service");
  EXPECT_STREQ(sm::kind_name(sm::Kind::kMboxWait), "mbox_wait");
  EXPECT_STREQ(sm::kind_name(sm::Kind::kRetransmitDelay),
               "retransmit_delay");
}

}  // namespace
