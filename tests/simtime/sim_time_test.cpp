// Unit tests for the simulated-time vocabulary.
#include "simtime/sim_time.hpp"

#include <gtest/gtest.h>

namespace {

using namespace simtime;

TEST(SimTime, ConversionsRoundTrip) {
  EXPECT_EQ(us(1.0), 1000);
  EXPECT_EQ(ms(1.0), 1000000);
  EXPECT_EQ(ns(42), 42);
  EXPECT_DOUBLE_EQ(to_us(us(12.5)), 12.5);
  EXPECT_DOUBLE_EQ(to_ms(ms(3.0)), 3.0);
}

TEST(SimTime, FractionalMicrosecondsKeepNanosecondPrecision) {
  EXPECT_EQ(us(0.3), 300);
  EXPECT_EQ(us(0.001), 1);
}

TEST(SimTime, ZeroIsEpoch) { EXPECT_EQ(kSimTimeZero, 0); }

TEST(SimTimeFormat, PicksUnitsByMagnitude) {
  EXPECT_EQ(format(ns(500)), "500 ns");
  EXPECT_EQ(format(us(12.34)), "12.34 us");
  EXPECT_EQ(format(ms(1.5)), "1.500 ms");
  EXPECT_EQ(format(ms(2500.0)), "2.5000 s");
}

TEST(SimTimeFormat, HandlesZeroAndNegative) {
  EXPECT_EQ(format(0), "0 ns");
  EXPECT_EQ(format(ns(-10)), "-10 ns");
}

}  // namespace
