// Unit tests for the Stats accumulator and the event Trace.
#include <gtest/gtest.h>

#include <cmath>

#include "simtime/stats.hpp"
#include "simtime/trace.hpp"

namespace {

using namespace simtime;

TEST(Stats, EmptyDefaults) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.percentile(50), 0.0);
}

TEST(Stats, BasicMoments) {
  Stats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, PercentilesByNearestRank) {
  Stats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
}

TEST(Stats, PercentileClampsOutOfRange) {
  Stats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.percentile(-5), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(500), 3.0);
}

TEST(Stats, ResetClears) {
  Stats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(Trace, DisabledRecordsNothing) {
  Trace::global().clear();
  Trace::global().set_enabled(false);
  Trace::global().record("x", TraceKind::kDma, "", 0, 1);
  EXPECT_TRUE(Trace::global().events().empty());
}

TEST(Trace, ScopedTraceCollectsAndStops) {
  {
    ScopedTrace scoped;
    Trace::global().record("spe0", TraceKind::kDma, "get 16B", 0, us(14));
    Trace::global().record("spe0", TraceKind::kMailboxWrite, "", us(14),
                           us(15));
    EXPECT_EQ(Trace::global().events().size(), 2u);
    EXPECT_EQ(Trace::global().count(TraceKind::kDma), 1u);
    EXPECT_EQ(Trace::global().count(TraceKind::kMpiSend), 0u);
  }
  EXPECT_FALSE(Trace::global().enabled());
}

TEST(Trace, KindNamesAreStable) {
  EXPECT_STREQ(to_string(TraceKind::kDma), "dma");
  EXPECT_STREQ(to_string(TraceKind::kCopilotService), "copilot_service");
  EXPECT_STREQ(to_string(TraceKind::kPilotCall), "pilot_call");
}

}  // namespace
