// Unit tests for Lamport-style virtual clocks.
#include "simtime/virtual_clock.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using namespace simtime;

TEST(VirtualClock, StartsAtEpochByDefault) {
  VirtualClock c;
  EXPECT_EQ(c.now(), kSimTimeZero);
}

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock c(us(5));
  EXPECT_EQ(c.now(), us(5));
}

TEST(VirtualClock, AdvanceAccumulates) {
  VirtualClock c;
  EXPECT_EQ(c.advance(us(3)), us(3));
  EXPECT_EQ(c.advance(us(4)), us(7));
  EXPECT_EQ(c.now(), us(7));
}

TEST(VirtualClock, JoinTakesMaximum) {
  VirtualClock c(us(10));
  EXPECT_EQ(c.join(us(4)), us(10));   // older stamp: no effect
  EXPECT_EQ(c.join(us(25)), us(25));  // newer stamp: adopt
  EXPECT_EQ(c.now(), us(25));
}

TEST(VirtualClock, JoinAdvanceComposes) {
  VirtualClock c(us(10));
  EXPECT_EQ(c.join_advance(us(20), us(5)), us(25));
  EXPECT_EQ(c.join_advance(us(1), us(5)), us(30));  // stale join, still +5
}

TEST(VirtualClock, ResetReturnsToGivenTime) {
  VirtualClock c;
  c.advance(us(100));
  c.reset();
  EXPECT_EQ(c.now(), kSimTimeZero);
  c.reset(us(7));
  EXPECT_EQ(c.now(), us(7));
}

TEST(VirtualClock, ConcurrentJoinsAreMonotone) {
  VirtualClock c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&c, t] {
      for (int i = 0; i < 1000; ++i) {
        c.join(us(t * 1000 + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.now(), us(7999));
}

TEST(VirtualClock, ConcurrentAdvancesAllCount) {
  VirtualClock c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 1000; ++i) c.advance(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.now(), 4000);
}

TEST(ClockSpan, MeasuresElapsedOnOneClock) {
  VirtualClock c(us(50));
  ClockSpan span(c);
  c.advance(us(30));
  c.join(us(60));  // below current: no effect
  EXPECT_EQ(span.elapsed(), us(30));
}

}  // namespace
