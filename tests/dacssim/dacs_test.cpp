// Unit tests for the DaCS-shaped baseline library, including the two
// properties the paper leans on: the strict HE/AE hierarchy (no AE-to-AE
// communication) and the 36 600-byte SPE-side footprint.
#include "dacssim/dacs.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "cellsim/spu.hpp"

namespace {

using namespace dacs;

const simtime::CostModel kCost = simtime::default_cost_model();

struct TestArgs {
  Runtime* rt;
  remote_mem_t region;
  std::atomic<int>* probe;
};

int put_then_signal(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* args = static_cast<TestArgs*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  const char payload[16] = "hello from AE!!";
  wid_t wid = 0;
  EXPECT_EQ(dacs_wid_reserve(*args->rt, &wid), DACS_SUCCESS);
  EXPECT_EQ(dacs_put(*args->rt, args->region, 0, payload, sizeof payload, wid),
            DACS_SUCCESS);
  EXPECT_EQ(dacs_wait(*args->rt, wid), DACS_SUCCESS);
  EXPECT_EQ(dacs_wid_release(*args->rt, &wid), DACS_SUCCESS);
  dacs_mailbox_write_to_parent(*args->rt, 0xCAFE);
  return 7;
}

TEST(Dacs, PutWaitMailboxRoundTrip) {
  cellsim::CellBlade blade("d", kCost);
  Runtime rt(blade, kCost);
  char buffer[16] = {};
  remote_mem_t region;
  ASSERT_EQ(dacs_remote_mem_create(rt, buffer, sizeof buffer, &region),
            DACS_SUCCESS);

  TestArgs args{&rt, region, nullptr};
  const cellsim::spe2::spe_program_handle_t prog{"putter", &put_then_signal,
                                                 2048};
  ASSERT_EQ(dacs_de_start(rt, de_id_t{0}, prog, cellsim::ea_of(&args)),
            DACS_SUCCESS);

  std::uint32_t token = 0;
  ASSERT_EQ(dacs_mailbox_read(rt, de_id_t{0}, &token), DACS_SUCCESS);
  EXPECT_EQ(token, 0xCAFEu);
  EXPECT_STREQ(buffer, "hello from AE!!");

  std::int32_t status = 0;
  ASSERT_EQ(dacs_de_wait(rt, de_id_t{0}, &status), DACS_SUCCESS);
  EXPECT_EQ(status, 7);
  EXPECT_EQ(dacs_remote_mem_release(rt, &region), DACS_SUCCESS);
}

int get_from_region(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* args = static_cast<TestArgs*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  std::uint32_t go = 0;
  dacs_mailbox_read_from_parent(*args->rt, &go);
  char data[8] = {};
  wid_t wid = 0;
  dacs_wid_reserve(*args->rt, &wid);
  EXPECT_EQ(dacs_get(*args->rt, data, args->region, 0, sizeof data, wid),
            DACS_SUCCESS);
  dacs_wait(*args->rt, wid);
  dacs_wid_release(*args->rt, &wid);
  args->probe->store(std::memcmp(data, "0123456", 8) == 0 ? 1 : 0);
  return 0;
}

TEST(Dacs, GetPullsHeData) {
  cellsim::CellBlade blade("d", kCost);
  Runtime rt(blade, kCost);
  char buffer[8];
  std::memcpy(buffer, "0123456", 8);
  remote_mem_t region;
  ASSERT_EQ(dacs_remote_mem_create(rt, buffer, sizeof buffer, &region),
            DACS_SUCCESS);
  std::atomic<int> ok{-1};
  TestArgs args{&rt, region, &ok};
  const cellsim::spe2::spe_program_handle_t prog{"getter", &get_from_region,
                                                 2048};
  ASSERT_EQ(dacs_de_start(rt, de_id_t{1}, prog, cellsim::ea_of(&args)),
            DACS_SUCCESS);
  dacs_mailbox_write(rt, de_id_t{1}, 1);
  std::int32_t status = 0;
  dacs_de_wait(rt, de_id_t{1}, &status);
  EXPECT_EQ(ok.load(), 1);
}

int measure_footprint(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* probe = static_cast<std::atomic<std::size_t>*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  for (const auto& seg : cellsim::spu::self().allocator().segments()) {
    if (seg.name == "text:libdacs") probe->store(seg.size);
  }
  return 0;
}

TEST(Dacs, SpeFootprintMatchesPaper) {
  // libdacs.a occupies 36 600 bytes of local store (paper §V) — more than
  // 3.5x CellPilot's 10 336.
  cellsim::CellBlade blade("d", kCost);
  Runtime rt(blade, kCost);
  std::atomic<std::size_t> size{0};
  const cellsim::spe2::spe_program_handle_t prog{"meter", &measure_footprint,
                                                 2048};
  dacs_de_start(rt, de_id_t{0}, prog, cellsim::ea_of(&size));
  std::int32_t status = 0;
  dacs_de_wait(rt, de_id_t{0}, &status);
  EXPECT_EQ(size.load(), kDacsSpuFootprintBytes);
  EXPECT_EQ(kDacsSpuFootprintBytes, 36600u);
}

int violate_hierarchy(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* args = static_cast<TestArgs*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  // An AE trying to establish its own shareable region (the prerequisite
  // for AE<->AE transfers) hits the hierarchy wall.
  char local[16];
  remote_mem_t region;
  const dacs_rc rc =
      dacs_remote_mem_create(*args->rt, local, sizeof local, &region);
  args->probe->store(rc);
  return 0;
}

TEST(Dacs, AeToAeCommunicationIsImpossible) {
  // The limitation that motivated CellPilot (paper §II.B): "direct
  // communication between SPEs is not supported due to the strongly
  // hierarchical model of DaCS".
  cellsim::CellBlade blade("d", kCost);
  Runtime rt(blade, kCost);
  std::atomic<int> rc{0};
  TestArgs args{&rt, {}, &rc};
  const cellsim::spe2::spe_program_handle_t prog{"violator",
                                                 &violate_hierarchy, 2048};
  dacs_de_start(rt, de_id_t{0}, prog, cellsim::ea_of(&args));
  std::int32_t status = 0;
  dacs_de_wait(rt, de_id_t{0}, &status);
  EXPECT_EQ(rc.load(), DACS_ERR_INVALID_TARGET);
}

TEST(Dacs, InvalidHandlesAndTargets) {
  cellsim::CellBlade blade("d", kCost);
  Runtime rt(blade, kCost);
  char buffer[8];
  remote_mem_t region;
  EXPECT_EQ(dacs_remote_mem_create(rt, nullptr, 8, &region),
            DACS_ERR_INVALID_ADDR);
  EXPECT_EQ(dacs_remote_mem_create(rt, buffer, 0, &region),
            DACS_ERR_INVALID_ADDR);
  std::size_t size = 0;
  EXPECT_EQ(dacs_remote_mem_query(rt, remote_mem_t{99}, &size),
            DACS_ERR_INVALID_HANDLE);
  EXPECT_EQ(dacs_mailbox_write(rt, de_id_t{999}, 0),
            DACS_ERR_INVALID_TARGET);
  const cellsim::spe2::spe_program_handle_t bad{"bad", nullptr, 0};
  EXPECT_EQ(dacs_de_start(rt, de_id_t{0}, bad, 0), DACS_ERR_INVALID_HANDLE);
  EXPECT_EQ(dacs_de_wait(rt, de_id_t{5}, nullptr), DACS_ERR_INVALID_TARGET);
}

TEST(Dacs, QueryReportsRegionSize) {
  cellsim::CellBlade blade("d", kCost);
  Runtime rt(blade, kCost);
  char buffer[128];
  remote_mem_t region;
  ASSERT_EQ(dacs_remote_mem_create(rt, buffer, sizeof buffer, &region),
            DACS_SUCCESS);
  std::size_t size = 0;
  EXPECT_EQ(dacs_remote_mem_query(rt, region, &size), DACS_SUCCESS);
  EXPECT_EQ(size, 128u);
}

TEST(Dacs, OutOfRangeTransferRejected) {
  cellsim::CellBlade blade("d", kCost);
  Runtime rt(blade, kCost);
  char buffer[16];
  remote_mem_t region;
  ASSERT_EQ(dacs_remote_mem_create(rt, buffer, sizeof buffer, &region),
            DACS_SUCCESS);
  // AE-side call outside an AE context is rejected before range checks.
  char src[32];
  EXPECT_EQ(dacs_put(rt, region, 0, src, 32, 1), DACS_ERR_NOT_INITIALIZED);
}

}  // namespace

namespace {

TEST(Dacs, WidLifecycleErrors) {
  cellsim::CellBlade blade("d2", kCost);
  Runtime rt(blade, kCost);
  wid_t wid = 0;
  ASSERT_EQ(dacs_wid_reserve(rt, &wid), DACS_SUCCESS);
  ASSERT_EQ(dacs_wid_release(rt, &wid), DACS_SUCCESS);
  // Releasing again (now zeroed) or waiting on it is an error.
  EXPECT_EQ(dacs_wid_release(rt, &wid), DACS_ERR_INVALID_HANDLE);
  EXPECT_EQ(dacs_wait(rt, 12345), DACS_ERR_INVALID_HANDLE);
  EXPECT_EQ(dacs_wid_reserve(rt, nullptr), DACS_ERR_INVALID_HANDLE);
}

TEST(Dacs, ReleasedRegionIsGone) {
  cellsim::CellBlade blade("d2", kCost);
  Runtime rt(blade, kCost);
  char buffer[32];
  remote_mem_t region;
  ASSERT_EQ(dacs_remote_mem_create(rt, buffer, sizeof buffer, &region),
            DACS_SUCCESS);
  const remote_mem_t copy = region;
  ASSERT_EQ(dacs_remote_mem_release(rt, &region), DACS_SUCCESS);
  std::size_t size = 0;
  EXPECT_EQ(dacs_remote_mem_query(rt, copy, &size),
            DACS_ERR_INVALID_HANDLE);
  EXPECT_EQ(dacs_remote_mem_release(rt, &region), DACS_ERR_INVALID_HANDLE);
}

int wait_quit(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  auto* rt = static_cast<Runtime*>(
      cellsim::ptr_of(static_cast<cellsim::EffectiveAddress>(argp)));
  std::uint32_t token = 0;
  dacs_mailbox_read_from_parent(*rt, &token);
  return static_cast<int>(token);
}

TEST(Dacs, MultipleAesRunConcurrently) {
  cellsim::CellBlade blade("d2", kCost);
  Runtime rt(blade, kCost);
  const cellsim::spe2::spe_program_handle_t prog{"waiter", &wait_quit, 1024};
  for (int ae = 0; ae < 4; ++ae) {
    ASSERT_EQ(dacs_de_start(rt, de_id_t{ae}, prog, cellsim::ea_of(&rt)),
              DACS_SUCCESS);
  }
  for (int ae = 0; ae < 4; ++ae) {
    ASSERT_EQ(dacs_mailbox_write(rt, de_id_t{ae},
                                 static_cast<std::uint32_t>(10 + ae)),
              DACS_SUCCESS);
  }
  for (int ae = 0; ae < 4; ++ae) {
    std::int32_t status = -1;
    ASSERT_EQ(dacs_de_wait(rt, de_id_t{ae}, &status), DACS_SUCCESS);
    EXPECT_EQ(status, 10 + ae);
  }
}

}  // namespace
