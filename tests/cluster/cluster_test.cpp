// Unit tests for the cluster layer: node specs, rank placement, Co-Pilot
// and service rank layout, and the paper's testbed configuration.
#include "cluster/cluster.hpp"

#include <gtest/gtest.h>

namespace {

using namespace cluster;

TEST(ClusterConfig, PaperTestbedShape) {
  // 8 dual-PowerXCell blades + 4 Xeon nodes (2x4-core, 2x8-core).
  const ClusterConfig c = ClusterConfig::paper_testbed();
  ASSERT_EQ(c.nodes.size(), 12u);
  int cells = 0, xeon_ranks = 0;
  for (const NodeSpec& n : c.nodes) {
    if (n.kind == NodeKind::kCell) {
      ++cells;
    } else {
      xeon_ranks += static_cast<int>(n.ranks);
    }
  }
  EXPECT_EQ(cells, 8);
  EXPECT_EQ(xeon_ranks, 4 + 4 + 8 + 8);
}

TEST(Cluster, EmptyConfigRejected) {
  EXPECT_THROW(Cluster(ClusterConfig{}), std::invalid_argument);
}

TEST(Cluster, UserRanksAreContiguousFromZero) {
  ClusterConfig c;
  c.nodes.push_back(NodeSpec::cell(2));
  c.nodes.push_back(NodeSpec::xeon(3));
  Cluster cl(std::move(c));
  EXPECT_EQ(cl.user_rank_count(), 5);
  EXPECT_EQ(cl.first_rank_of_node(0), 0);
  EXPECT_EQ(cl.first_rank_of_node(1), 2);
  for (int r = 0; r < 2; ++r) EXPECT_EQ(cl.node_of_rank(r), 0);
  for (int r = 2; r < 5; ++r) EXPECT_EQ(cl.node_of_rank(r), 1);
}

TEST(Cluster, CopilotRanksFollowUserRanks) {
  ClusterConfig c;
  c.nodes.push_back(NodeSpec::cell(1));
  c.nodes.push_back(NodeSpec::xeon(2));
  c.nodes.push_back(NodeSpec::cell(1));
  Cluster cl(std::move(c));
  // 4 user ranks, then one Co-Pilot per Cell node (nodes 0 and 2).
  EXPECT_EQ(cl.user_rank_count(), 4);
  EXPECT_EQ(cl.world_size(), 6);
  EXPECT_EQ(cl.copilot_rank(0), 4);
  EXPECT_EQ(cl.copilot_rank(2), 5);
  EXPECT_THROW(cl.copilot_rank(1), std::invalid_argument);  // Xeon node
}

TEST(Cluster, CopilotsRunOnPpeCores) {
  Cluster cl(ClusterConfig::two_cells());
  const mpisim::Rank cp = cl.copilot_rank(0);
  EXPECT_EQ(cl.world().info(cp).core, simtime::CoreKind::kPpe);
  EXPECT_EQ(cl.world().info(cp).node, 0);
}

TEST(Cluster, ServiceRankIsLastWhenConfigured) {
  ClusterConfig c;
  c.nodes.push_back(NodeSpec::cell(1));
  c.deadlock_service = true;
  Cluster cl(std::move(c));
  ASSERT_TRUE(cl.service_rank().has_value());
  EXPECT_EQ(*cl.service_rank(), cl.world_size() - 1);
}

TEST(Cluster, NoServiceRankByDefault) {
  Cluster cl(ClusterConfig::two_cells());
  EXPECT_FALSE(cl.service_rank().has_value());
}

TEST(Cluster, BladesExistOnlyOnCellNodes) {
  ClusterConfig c;
  c.nodes.push_back(NodeSpec::cell(1));
  c.nodes.push_back(NodeSpec::xeon(1));
  Cluster cl(std::move(c));
  EXPECT_TRUE(cl.is_cell_node(0));
  EXPECT_FALSE(cl.is_cell_node(1));
  EXPECT_NO_THROW(cl.blade(0));
  EXPECT_THROW(cl.blade(1), std::invalid_argument);
  EXPECT_EQ(cl.spe_count(0), 16u);  // dual-chip blade
  EXPECT_EQ(cl.spe_count(1), 0u);
}

TEST(Cluster, SpesPerChipIsConfigurable) {
  ClusterConfig c;
  c.nodes.push_back(NodeSpec::cell(1, /*spes_per_chip=*/4));
  Cluster cl(std::move(c));
  EXPECT_EQ(cl.spe_count(0), 8u);
}

TEST(Cluster, NodesGetDefaultNames) {
  ClusterConfig c;
  c.nodes.push_back(NodeSpec::cell(1));
  c.nodes.push_back(NodeSpec::xeon(1));
  Cluster cl(std::move(c));
  EXPECT_EQ(cl.node(0).name, "node0");
  EXPECT_EQ(cl.node(1).name, "node1");
  EXPECT_EQ(cl.world().info(0).name, "node0.rank0");
}

TEST(Cluster, AbortClosesSpeMailboxes) {
  Cluster cl(ClusterConfig::two_cells());
  cl.world().abort("teardown test");
  EXPECT_TRUE(cl.spe(0, 0).inbound_mailbox().closed());
  EXPECT_TRUE(cl.spe(1, 15).outbound_mailbox().closed());
}

TEST(Cluster, InvalidIndicesThrow) {
  Cluster cl(ClusterConfig::two_cells());
  EXPECT_THROW(cl.node(2), std::out_of_range);
  EXPECT_THROW(cl.node_of_rank(99), std::out_of_range);
  EXPECT_THROW(cl.first_rank_of_node(-1), std::out_of_range);
}

}  // namespace
