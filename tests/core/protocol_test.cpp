// Unit tests for the CellPilot control protocol and channel taxonomy.
#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "core/cellpilot.hpp"
#include "pilot/context.hpp"

namespace {

using namespace cellpilot;

TEST(Protocol, OpcodeChannelPacking) {
  const std::uint32_t w = pack_op_channel(Opcode::kWrite, 123456);
  EXPECT_EQ(unpack_opcode(w), Opcode::kWrite);
  EXPECT_EQ(unpack_channel(w), 123456);
}

TEST(Protocol, PackingCoversFullChannelRange) {
  const std::uint32_t w = pack_op_channel(Opcode::kRead, 0x00FFFFFF);
  EXPECT_EQ(unpack_opcode(w), Opcode::kRead);
  EXPECT_EQ(unpack_channel(w), 0x00FFFFFF);
}

TEST(Protocol, RequestIsFourWords) { EXPECT_EQ(kRequestWords, 4); }

TEST(Protocol, FootprintMatchesPaperMeasurement) {
  // The paper: "cellpilot.o takes up 10336 bytes of SPE storage".
  EXPECT_EQ(kCellPilotSpuFootprintBytes, 10336u);
}

// --- channel-type resolution over a real configured app ---------------------

PI_SPE_PROGRAM(proto_idle) { return 0; }

TEST(ChannelTypes, TableOneTaxonomyResolved) {
  // Machine: cell node 0, cell node 1, xeon node 2.
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));

  std::atomic<bool> checked{false};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* ppe1 = PI_CreateProcess([](int, void*) { return 0; }, 0,
                                        nullptr);  // node 1 PPE
    PI_PROCESS* xeon = PI_CreateProcess([](int, void*) { return 0; }, 0,
                                        nullptr);  // node 2 Xeon
    PI_PROCESS* spe0 = PI_CreateSPE(proto_idle, PI_MAIN, 0);  // node 0
    PI_PROCESS* spe0b = PI_CreateSPE(proto_idle, PI_MAIN, 1);  // node 0
    PI_PROCESS* spe1 = PI_CreateSPE(proto_idle, ppe1, 0);      // node 1

    struct Case {
      PI_PROCESS* from;
      PI_PROCESS* to;
      cellpilot::ChannelType expected;
    };
    const Case cases[] = {
        {PI_MAIN, ppe1, ChannelType::kType1},   // PPE <-> remote PPE
        {PI_MAIN, xeon, ChannelType::kType1},   // PPE <-> non-Cell
        {PI_MAIN, spe0, ChannelType::kType2},   // PPE <-> local SPE
        {spe0, PI_MAIN, ChannelType::kType2},   // direction-agnostic
        {PI_MAIN, spe1, ChannelType::kType3},   // PPE <-> remote SPE
        {xeon, spe0, ChannelType::kType3},      // non-Cell <-> remote SPE
        {spe0, spe0b, ChannelType::kType4},     // SPE <-> local SPE
        {spe0, spe1, ChannelType::kType5},      // SPE <-> remote SPE
    };
    auto& app = pilot::context().app();
    for (const Case& c : cases) {
      PI_CHANNEL* ch = PI_CreateChannel(c.from, c.to);
      EXPECT_EQ(resolve_channel_type(app, *ch), c.expected)
          << c.from->name << " -> " << c.to->name;
    }
    checked.store(true);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_TRUE(checked.load());
}

}  // namespace
