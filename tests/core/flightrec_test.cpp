// flightrec_test.cpp — the fault flight recorder: an SPE death on an armed
// recorder must leave a self-contained postmortem artifact on disk (reason,
// event tail, channel counters, armed fault plan), a disarmed recorder
// must leave nothing, and manual dumps must honor the same contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cellpilot.hpp"
#include "core/faultplan.hpp"
#include "core/flightrec.hpp"
#include "pilot/errors.hpp"

namespace {

using cellpilot::faults::FaultPlan;
using cellpilot::flightrec::FlightRecorder;

PI_CHANNEL* g_ch = nullptr;
std::atomic<int> g_main_code{-1};

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

std::string artifact_path(const char* name) {
  return ::testing::TempDir() + "cellpilot_" + name + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FlightRecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().reset_for_tests();
    g_main_code.store(-1);
  }
  void TearDown() override {
    FaultPlan::global().reset();
    FlightRecorder::global().reset_for_tests();
  }
};

PI_SPE_PROGRAM(doomed_writer) {
  PI_Write(g_ch, "%d", 17);  // the fault plan kills the SPE at this request
  return 0;
}

int crash_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* doomed = PI_CreateSPE(doomed_writer, PI_MAIN, 0);
  g_ch = PI_CreateChannel(doomed, PI_MAIN);
  PI_StartAll();
  PI_RunSPE(doomed, 0, nullptr);
  int v = 0;
  try {
    PI_Read(g_ch, "%d", &v);
  } catch (const pilot::PilotError& e) {
    g_main_code.store(static_cast<int>(e.code()));
  }
  PI_StopMain(0);
  return 0;
}

cellpilot::RunOptions crash_opts() {
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=spe_crash@node0.cell0.spe0:op=1"};
  return opts;
}

TEST_F(FlightRecTest, SpeDeathDumpsASelfContainedArtifact) {
  const std::string path = artifact_path("flightrec_spe_death");
  std::remove(path.c_str());
  FlightRecorder::global().configure(path);

  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, crash_main, crash_opts());
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_main_code.load(), static_cast<int>(PI_SPE_FAULT));
  EXPECT_GE(FlightRecorder::global().dump_count(), 1);

  const std::string artifact = slurp(path);
  ASSERT_FALSE(artifact.empty()) << "no artifact at " << path;
  EXPECT_NE(artifact.find("\"generator\":\"cellpilot-flightrec\""),
            std::string::npos);
  EXPECT_NE(artifact.find("\"reason\":\"spe_fault: "), std::string::npos)
      << "trigger reason must name the fault class";
  EXPECT_NE(artifact.find("\"faultPlan\""), std::string::npos);
  EXPECT_NE(artifact.find("spe_crash"), std::string::npos)
      << "the armed rule must be reproducible from the artifact";
  EXPECT_NE(artifact.find("\"channelStats\""), std::string::npos);
  EXPECT_NE(artifact.find("\"events\""), std::string::npos);
  // The SPE dies before its write completes, so the last breadcrumbs are
  // the transport hop that carried the doomed request and the Co-Pilot's
  // fault event — exactly what a postmortem needs.
  EXPECT_NE(artifact.find("\"name\":\"mpi_send\""), std::string::npos);
  EXPECT_NE(artifact.find("\"name\":\"copilot_fault\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FlightRecTest, DisarmedRecorderWritesNothing) {
  ASSERT_FALSE(FlightRecorder::global().armed());
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, crash_main, crash_opts());
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_main_code.load(), static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(FlightRecorder::global().dump_count(), 0);
  FlightRecorder::global().dump("ignored: recorder is disarmed");
  EXPECT_EQ(FlightRecorder::global().dump_count(), 0);
}

PI_CHANNEL* g_pending_go = nullptr;
PI_CHANNEL* g_pending_out = nullptr;

PI_SPE_PROGRAM(gated_pending_writer) {
  PI_Read(g_pending_go, "");  // hold the rank's async read in flight
  PI_Write(g_pending_out, "%d", 5);
  return 0;
}

TEST_F(FlightRecTest, PostmortemListsPendingOperationsBesideTheEventTail) {
  const std::string path = artifact_path("flightrec_pending_ops");
  std::remove(path.c_str());
  FlightRecorder::global().configure(path);

  cluster::Cluster machine = one_cell();
  int v = 0;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(gated_pending_writer, PI_MAIN, 0);
    g_pending_go = PI_CreateChannel(PI_MAIN, spe);
    g_pending_out = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    // The writer is gated on g_pending_go, so this read cannot settle:
    // a dump taken now must list it as an in-flight operation — the
    // "who is everyone waiting for?" table of a hang postmortem.
    PI_HANDLE h = PI_ReadAsync(g_pending_out, "%d", &v);
    FlightRecorder::global().dump("watchdog: simulated hang");
    PI_Write(g_pending_go, "");
    PI_Wait(h);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(v, 5) << "the pending read must still settle after the dump";

  const std::string artifact = slurp(path);
  ASSERT_FALSE(artifact.empty()) << "no artifact at " << path;
  EXPECT_NE(artifact.find("\"pendingOps\""), std::string::npos);
  EXPECT_NE(artifact.find("\"kind\":\"read\""), std::string::npos);
  EXPECT_NE(artifact.find("\"state\":\"in_flight\""), std::string::npos);
  EXPECT_NE(artifact.find("flightrec_test.cpp"), std::string::npos)
      << "each pending row must name its submitting call site";
  std::remove(path.c_str());
}

PI_CHANNEL* g_blade_go = nullptr;
PI_CHANNEL* g_blade_out = nullptr;
PI_CHANNEL* g_blade_burst = nullptr;

PI_SPE_PROGRAM(blade_gated_responder) {
  // Blocks until the master writes — which it never does before the blade
  // dies, so the master's async read of g_blade_out stays parked on this
  // blade's Co-Pilot for the whole crash sequence.
  PI_Read(g_blade_go, "");
  PI_Write(g_blade_out, "%d", 1);
  return 0;
}

PI_SPE_PROGRAM(blade_burst_writer) {
  for (int i = 0; i < 4; ++i) PI_Write(g_blade_burst, "%d", i);
  return 0;
}

TEST_F(FlightRecTest, BladeKillCrashSceneNamesTheParkedOpsOnTheDeadBlade) {
  const std::string path = artifact_path("flightrec_blade_kill");
  std::remove(path.c_str());
  FlightRecorder::global().configure(path);

  cluster::Cluster machine = one_cell();
  cellpilot::RunOptions opts;
  // The burst drives the victim blade's op count to the trigger; there is
  // no checkpoint, so the kill degrades to peer faults instead of a
  // restore — the crash scene is the only record of what was in flight.
  opts.args = {"-pifault=blade_kill@node0:op=3"};
  int v = 0;
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* gated = PI_CreateSPE(blade_gated_responder, PI_MAIN, 0);
        PI_PROCESS* writer = PI_CreateSPE(blade_burst_writer, PI_MAIN, 0);
        g_blade_go = PI_CreateChannel(PI_MAIN, gated);
        g_blade_out = PI_CreateChannel(gated, PI_MAIN);
        g_blade_burst = PI_CreateChannel(writer, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(gated, 0, nullptr);
        PI_RunSPE(writer, 0, nullptr);
        // Parked on the doomed blade: the responder is gated, so this read
        // cannot settle before the kill.  It is never harvested — harvest
        // would release the registry row, and the crash scene exists to
        // record exactly the ops nobody got to harvest.  The rank engine
        // reclaims the slot at thread teardown.
        PI_HANDLE h = PI_ReadAsync(g_blade_out, "%d", &v);
        (void)h;
        try {
          int b = -1;
          for (int i = 0; i < 4; ++i) PI_Read(g_blade_burst, "%d", &b);
          PI_Write(g_blade_go, "");
        } catch (const pilot::PilotError& e) {
          g_main_code.store(static_cast<int>(e.code()));
        }
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_main_code.load(), static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(machine.blade_kill_count(0), 1);
  EXPECT_GE(FlightRecorder::global().dump_count(), 1);

  const std::string artifact = slurp(path);
  ASSERT_FALSE(artifact.empty()) << "no artifact at " << path;
  // The sequence opens with the blade_kill scene and keeps the degrade
  // faults that follow it.
  const std::size_t kill_at =
      artifact.find("\"reason\":\"blade_kill: node 0 lost");
  ASSERT_NE(kill_at, std::string::npos)
      << "the crash sequence must open with the blade_kill scene";
  EXPECT_NE(artifact.find("\"reason\":\"spe_fault: blade node0 killed"),
            std::string::npos)
      << "the degrade faults must ride behind the kill scene";
  // The kill scene's pendingOps table must carry the read still parked on
  // the dead blade: the "who died holding what" line of a blade
  // postmortem.
  const std::size_t ops_at = artifact.find("\"pendingOps\":[", kill_at);
  ASSERT_NE(ops_at, std::string::npos);
  const std::size_t ops_end = artifact.find("\n]", ops_at);
  ASSERT_NE(ops_end, std::string::npos);
  const std::string ops = artifact.substr(ops_at, ops_end - ops_at);
  EXPECT_NE(ops.find("\"kind\":\"read\""), std::string::npos) << ops;
  EXPECT_NE(ops.find("\"entity\":\"node0."), std::string::npos)
      << "the parked op must be attributed to the dead blade:\n" << ops;
  EXPECT_NE(ops.find("flightrec_test.cpp"), std::string::npos)
      << "the parked op must name its submitting call site:\n" << ops;
  if (::getenv("KEEP_ARTIFACT") == nullptr) std::remove(path.c_str());
}

TEST_F(FlightRecTest, ManualDumpsAccumulateTheWholeCrashSequence) {
  const std::string path = artifact_path("flightrec_manual");
  std::remove(path.c_str());
  FlightRecorder::global().configure(path);
  EXPECT_TRUE(FlightRecorder::global().armed());
  EXPECT_EQ(FlightRecorder::global().path(), path);

  FlightRecorder::global().dump("watchdog: first trigger");
  FlightRecorder::global().dump("watchdog: second trigger");
  EXPECT_EQ(FlightRecorder::global().dump_count(), 2);

  const std::string artifact = slurp(path);
  EXPECT_NE(artifact.find("\"reason\":\"watchdog: first trigger\""),
            std::string::npos)
      << "the first scene must survive later triggers";
  EXPECT_NE(artifact.find("\"reason\":\"watchdog: second trigger\""),
            std::string::npos);
  EXPECT_NE(artifact.find("\"dumpOrdinal\":1"), std::string::npos);
  EXPECT_NE(artifact.find("\"dumpOrdinal\":2"), std::string::npos);

  // Re-arming starts a fresh artifact: the sequence belongs to one run.
  FlightRecorder::global().configure(path);
  FlightRecorder::global().dump("watchdog: after rearm");
  const std::string rearmed = slurp(path);
  EXPECT_EQ(rearmed.find("first trigger"), std::string::npos);
  EXPECT_NE(rearmed.find("\"reason\":\"watchdog: after rearm\""),
            std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
