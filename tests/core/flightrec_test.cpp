// flightrec_test.cpp — the fault flight recorder: an SPE death on an armed
// recorder must leave a self-contained postmortem artifact on disk (reason,
// event tail, channel counters, armed fault plan), a disarmed recorder
// must leave nothing, and manual dumps must honor the same contract.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cellpilot.hpp"
#include "core/faultplan.hpp"
#include "core/flightrec.hpp"
#include "pilot/errors.hpp"

namespace {

using cellpilot::faults::FaultPlan;
using cellpilot::flightrec::FlightRecorder;

PI_CHANNEL* g_ch = nullptr;
std::atomic<int> g_main_code{-1};

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

std::string artifact_path(const char* name) {
  return ::testing::TempDir() + "cellpilot_" + name + ".json";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class FlightRecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FlightRecorder::global().reset_for_tests();
    g_main_code.store(-1);
  }
  void TearDown() override {
    FaultPlan::global().reset();
    FlightRecorder::global().reset_for_tests();
  }
};

PI_SPE_PROGRAM(doomed_writer) {
  PI_Write(g_ch, "%d", 17);  // the fault plan kills the SPE at this request
  return 0;
}

int crash_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* doomed = PI_CreateSPE(doomed_writer, PI_MAIN, 0);
  g_ch = PI_CreateChannel(doomed, PI_MAIN);
  PI_StartAll();
  PI_RunSPE(doomed, 0, nullptr);
  int v = 0;
  try {
    PI_Read(g_ch, "%d", &v);
  } catch (const pilot::PilotError& e) {
    g_main_code.store(static_cast<int>(e.code()));
  }
  PI_StopMain(0);
  return 0;
}

cellpilot::RunOptions crash_opts() {
  cellpilot::RunOptions opts;
  opts.args = {"-pifault=spe_crash@node0.cell0.spe0:op=1"};
  return opts;
}

TEST_F(FlightRecTest, SpeDeathDumpsASelfContainedArtifact) {
  const std::string path = artifact_path("flightrec_spe_death");
  std::remove(path.c_str());
  FlightRecorder::global().configure(path);

  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, crash_main, crash_opts());
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_main_code.load(), static_cast<int>(PI_SPE_FAULT));
  EXPECT_GE(FlightRecorder::global().dump_count(), 1);

  const std::string artifact = slurp(path);
  ASSERT_FALSE(artifact.empty()) << "no artifact at " << path;
  EXPECT_NE(artifact.find("\"generator\":\"cellpilot-flightrec\""),
            std::string::npos);
  EXPECT_NE(artifact.find("\"reason\":\"spe_fault: "), std::string::npos)
      << "trigger reason must name the fault class";
  EXPECT_NE(artifact.find("\"faultPlan\""), std::string::npos);
  EXPECT_NE(artifact.find("spe_crash"), std::string::npos)
      << "the armed rule must be reproducible from the artifact";
  EXPECT_NE(artifact.find("\"channelStats\""), std::string::npos);
  EXPECT_NE(artifact.find("\"events\""), std::string::npos);
  // The SPE dies before its write completes, so the last breadcrumbs are
  // the transport hop that carried the doomed request and the Co-Pilot's
  // fault event — exactly what a postmortem needs.
  EXPECT_NE(artifact.find("\"name\":\"mpi_send\""), std::string::npos);
  EXPECT_NE(artifact.find("\"name\":\"copilot_fault\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(FlightRecTest, DisarmedRecorderWritesNothing) {
  ASSERT_FALSE(FlightRecorder::global().armed());
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, crash_main, crash_opts());
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_main_code.load(), static_cast<int>(PI_SPE_FAULT));
  EXPECT_EQ(FlightRecorder::global().dump_count(), 0);
  FlightRecorder::global().dump("ignored: recorder is disarmed");
  EXPECT_EQ(FlightRecorder::global().dump_count(), 0);
}

PI_CHANNEL* g_pending_go = nullptr;
PI_CHANNEL* g_pending_out = nullptr;

PI_SPE_PROGRAM(gated_pending_writer) {
  PI_Read(g_pending_go, "");  // hold the rank's async read in flight
  PI_Write(g_pending_out, "%d", 5);
  return 0;
}

TEST_F(FlightRecTest, PostmortemListsPendingOperationsBesideTheEventTail) {
  const std::string path = artifact_path("flightrec_pending_ops");
  std::remove(path.c_str());
  FlightRecorder::global().configure(path);

  cluster::Cluster machine = one_cell();
  int v = 0;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(gated_pending_writer, PI_MAIN, 0);
    g_pending_go = PI_CreateChannel(PI_MAIN, spe);
    g_pending_out = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    // The writer is gated on g_pending_go, so this read cannot settle:
    // a dump taken now must list it as an in-flight operation — the
    // "who is everyone waiting for?" table of a hang postmortem.
    PI_HANDLE h = PI_ReadAsync(g_pending_out, "%d", &v);
    FlightRecorder::global().dump("watchdog: simulated hang");
    PI_Write(g_pending_go, "");
    PI_Wait(h);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(v, 5) << "the pending read must still settle after the dump";

  const std::string artifact = slurp(path);
  ASSERT_FALSE(artifact.empty()) << "no artifact at " << path;
  EXPECT_NE(artifact.find("\"pendingOps\""), std::string::npos);
  EXPECT_NE(artifact.find("\"kind\":\"read\""), std::string::npos);
  EXPECT_NE(artifact.find("\"state\":\"in_flight\""), std::string::npos);
  EXPECT_NE(artifact.find("flightrec_test.cpp"), std::string::npos)
      << "each pending row must name its submitting call site";
  std::remove(path.c_str());
}

TEST_F(FlightRecTest, ManualDumpWorksMidSimulationAndLastWriterWins) {
  const std::string path = artifact_path("flightrec_manual");
  std::remove(path.c_str());
  FlightRecorder::global().configure(path);
  EXPECT_TRUE(FlightRecorder::global().armed());
  EXPECT_EQ(FlightRecorder::global().path(), path);

  FlightRecorder::global().dump("watchdog: first trigger");
  FlightRecorder::global().dump("watchdog: second trigger");
  EXPECT_EQ(FlightRecorder::global().dump_count(), 2);

  const std::string artifact = slurp(path);
  EXPECT_EQ(artifact.find("first trigger"), std::string::npos)
      << "each trigger rewrites the file";
  EXPECT_NE(artifact.find("\"reason\":\"watchdog: second trigger\""),
            std::string::npos);
  EXPECT_NE(artifact.find("\"dumpOrdinal\":2"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
