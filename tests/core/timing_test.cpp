// Shape tests for the paper's evaluation (Table II / Figures 5-6): the
// reproduction must preserve who wins, by roughly what factor, and where
// the orderings fall — not the authors' absolute microseconds.
#include <gtest/gtest.h>

#include "baseline/handcoded.hpp"
#include "benchkit/pingpong.hpp"

namespace {

using benchkit::Method;
using benchkit::PingPongSpec;
using cellpilot::ChannelType;

constexpr int kReps = 30;

double one_way(ChannelType type, std::size_t bytes, Method method) {
  PingPongSpec spec;
  spec.type = type;
  spec.bytes = bytes;
  spec.reps = kReps;
  return benchkit::pingpong_us(spec, method, simtime::default_cost_model());
}

/// Table II shape, parameterized over channel type and payload size.
class TableTwoShape
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(TableTwoShape, CellPilotPaysOverheadOverHandCodedTransfers) {
  const auto [type_int, bytes] = GetParam();
  const auto type = static_cast<ChannelType>(type_int);
  const double cp = one_way(type, bytes, Method::kCellPilot);
  const double dma = one_way(type, bytes, Method::kDma);
  const double copy = one_way(type, bytes, Method::kCopy);

  EXPECT_GT(cp, 0);
  EXPECT_GT(dma, 0);
  EXPECT_GT(copy, 0);
  if (type == ChannelType::kType1) {
    // No SPE endpoint: all three methods coincide up to library overhead.
    EXPECT_NEAR(dma, copy, 1e-9);
    EXPECT_GT(cp, dma);
    EXPECT_LT(cp, dma * 1.25);
  } else {
    // Co-Pilot generality costs over both hand-coded styles (paper §V).
    EXPECT_GT(cp, dma * 0.99);
    EXPECT_GT(cp, copy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TypesAndSizes, TableTwoShape,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(std::size_t{1}, std::size_t{1600})));

TEST(TableTwoShape, TypeOrderingAtOneByteMatchesPaper) {
  // Paper, CellPilot column @1B: type2 (59) < type1 (105) < type4 (112)
  // < type3 (140) < type5 (189).
  const double t1 = one_way(ChannelType::kType1, 1, Method::kCellPilot);
  const double t2 = one_way(ChannelType::kType2, 1, Method::kCellPilot);
  const double t3 = one_way(ChannelType::kType3, 1, Method::kCellPilot);
  const double t4 = one_way(ChannelType::kType4, 1, Method::kCellPilot);
  const double t5 = one_way(ChannelType::kType5, 1, Method::kCellPilot);
  EXPECT_LT(t2, t1);
  EXPECT_LT(t1, t3);
  EXPECT_LT(t4, t3);
  EXPECT_LT(t3, t5);
}

TEST(TableTwoShape, RemoteTypesAreDominatedByTheNetwork) {
  // Types 1/3/5 all carry the ~100us GigE+PPE hop; types 2/4 stay on-node.
  for (Method m : {Method::kCellPilot, Method::kDma, Method::kCopy}) {
    EXPECT_GT(one_way(ChannelType::kType3, 1, m),
              one_way(ChannelType::kType2, 1, m));
    EXPECT_GT(one_way(ChannelType::kType5, 1, m),
              one_way(ChannelType::kType4, 1, m));
  }
}

TEST(TableTwoShape, LocalDmaIsSizeInsensitiveButCopyIsNot) {
  // Paper: type2 DMA is 15us at both 1B and 1600B; Copy doubles.
  const double dma_small = one_way(ChannelType::kType2, 1, Method::kDma);
  const double dma_large = one_way(ChannelType::kType2, 1600, Method::kDma);
  const double copy_small = one_way(ChannelType::kType2, 1, Method::kCopy);
  const double copy_large = one_way(ChannelType::kType2, 1600, Method::kCopy);
  EXPECT_NEAR(dma_small, dma_large, dma_small * 0.05);
  EXPECT_GT(copy_large, copy_small * 1.5);
}

TEST(TableTwoShape, Type4HandCodedDoublesType2) {
  // The staged-through-main-memory protocol costs two transfers.
  const double t2 = one_way(ChannelType::kType2, 1, Method::kDma);
  const double t4 = one_way(ChannelType::kType4, 1, Method::kDma);
  EXPECT_GT(t4, 1.5 * t2);
  EXPECT_LT(t4, 2.5 * t2);
}

TEST(TableTwoShape, CopilotOverheadFactorIsInPaperBallpark) {
  // Paper type2 @1B: CellPilot/DMA = 59/15 ~ 3.9x.  Accept 2x..6x.
  const double ratio = one_way(ChannelType::kType2, 1, Method::kCellPilot) /
                       one_way(ChannelType::kType2, 1, Method::kDma);
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 6.0);
}

TEST(FigureSix, ThroughputGrowsWithPayloadAndRanksInverselyToLatency) {
  PingPongSpec small;
  small.type = ChannelType::kType2;
  small.bytes = 16;
  small.reps = kReps;
  PingPongSpec large = small;
  large.bytes = 1600;
  const auto cost = simtime::default_cost_model();
  EXPECT_GT(benchkit::throughput_mbps(large, Method::kDma, cost),
            benchkit::throughput_mbps(small, Method::kDma, cost));
  // At 1600B the DMA path out-runs CellPilot on throughput too.
  EXPECT_GT(benchkit::throughput_mbps(large, Method::kDma, cost),
            benchkit::throughput_mbps(large, Method::kCellPilot, cost));
}

TEST(Extension, DirectLsToLsDmaBeatsStagingThroughMainMemory) {
  const auto cost = simtime::default_cost_model();
  const simtime::SimTime direct =
      baseline::dma_direct_type4_pingpong(1600, kReps, cost);
  const simtime::SimTime staged =
      baseline::dma_pingpong(ChannelType::kType4, 1600, kReps, cost);
  EXPECT_LT(direct, staged);
  EXPECT_GT(direct, 0);
}

TEST(Determinism, VirtualTimeResultsAreExactlyReproducible) {
  // The whole point of virtual clocks: identical runs, identical numbers.
  const double a = one_way(ChannelType::kType5, 1600, Method::kCellPilot);
  const double b = one_way(ChannelType::kType5, 1600, Method::kCellPilot);
  EXPECT_DOUBLE_EQ(a, b);
}

}  // namespace
