// End-to-end tests of CellPilot's SPE machinery: every SPE channel type,
// data integrity, SPE lifecycle (launch / reuse / capacity), misuse
// diagnostics, and the protocol invariants observable in the event trace.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "core/protocol.hpp"
#include "pilot/context.hpp"
#include "simtime/trace.hpp"

namespace {

cluster::Cluster one_cell() {
  return cluster::Cluster([] {
    cluster::ClusterConfig c;
    c.nodes.push_back(cluster::NodeSpec::cell(1));
    return c;
  }());
}

cluster::Cluster two_cells() {
  return cluster::Cluster(cluster::ClusterConfig::two_cells());
}

// Shared app state.
PI_CHANNEL* g_down = nullptr;  // rank/SPE -> SPE
PI_CHANNEL* g_up = nullptr;    // SPE -> rank/SPE
PI_PROCESS* g_remote_spe = nullptr;
std::atomic<long long> g_sum{0};
std::atomic<int> g_runs{0};

// --- Type 2: PPE <-> local SPE ------------------------------------------------

PI_SPE_PROGRAM(t2_doubler) {
  int values[16];
  PI_Read(g_down, "%16d", values);
  for (int& v : values) v *= 2;
  PI_Write(g_up, "%16d", values);
  return 0;
}

TEST(CellPilot, Type2RoundTripDoublesArray) {
  cluster::Cluster machine = one_cell();
  std::array<int, 16> out{};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(t2_doubler, PI_MAIN, 0);
    g_down = PI_CreateChannel(PI_MAIN, spe);
    g_up = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    std::array<int, 16> in;
    std::iota(in.begin(), in.end(), 1);
    PI_Write(g_down, "%16d", in.data());
    PI_Read(g_up, "%16d", out.data());
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], 2 * (i + 1));
}

// --- Type 3: non-local rank <-> SPE -------------------------------------------

int t3_parent(int /*index*/, void* /*arg*/) {
  PI_RunSPE(g_remote_spe, 7, nullptr);
  return 0;
}

PI_SPE_PROGRAM(t3_echo) {
  // arg1 arrives from PI_RunSPE.
  double v = 0;
  PI_Read(g_down, "%lf", &v);
  PI_Write(g_up, "%lf", v + arg1);
  return 0;
}

TEST(CellPilot, Type3CrossNodeRoundTripCarriesRunSpeArgument) {
  cluster::Cluster machine = two_cells();
  std::atomic<double> got{0};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* parent = PI_CreateProcess(t3_parent, 0, nullptr);
    g_remote_spe = PI_CreateSPE(t3_echo, parent, 0);
    g_down = PI_CreateChannel(PI_MAIN, g_remote_spe);
    g_up = PI_CreateChannel(g_remote_spe, PI_MAIN);
    PI_StartAll();
    PI_Write(g_down, "%lf", 10.5);
    double v = 0;
    PI_Read(g_up, "%lf", &v);
    got.store(v);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_DOUBLE_EQ(got.load(), 17.5);
}

// --- Type 4: SPE <-> SPE on one node -------------------------------------------

PI_SPE_PROGRAM(t4_producer) {
  long long acc = 0;
  for (int i = 0; i < 10; ++i) {
    PI_Write(g_down, "%d", i);
    int back = 0;
    PI_Read(g_up, "%d", &back);
    acc += back;
  }
  g_sum.store(acc);
  return 0;
}

PI_SPE_PROGRAM(t4_consumer) {
  for (int i = 0; i < 10; ++i) {
    int v = 0;
    PI_Read(g_down, "%d", &v);
    PI_Write(g_up, "%d", v * v);
  }
  return 0;
}

TEST(CellPilot, Type4SpeToSpeConversationStaysOnChip) {
  cluster::Cluster machine = one_cell();
  g_sum.store(0);
  simtime::ScopedTrace trace;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* prod = PI_CreateSPE(t4_producer, PI_MAIN, 0);
    PI_PROCESS* cons = PI_CreateSPE(t4_consumer, PI_MAIN, 1);
    g_down = PI_CreateChannel(prod, cons);
    g_up = PI_CreateChannel(cons, prod);
    PI_StartAll();
    PI_RunSPE(prod, 0, nullptr);
    PI_RunSPE(cons, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  long long expect = 0;
  for (int i = 0; i < 10; ++i) expect += i * i;
  EXPECT_EQ(g_sum.load(), expect);
  // Protocol invariant: type-4 data never crosses MPI — every transfer is
  // a Co-Pilot mapped copy.  20 transfers = 20 mapped copies.
  EXPECT_EQ(simtime::Trace::global().count(simtime::TraceKind::kMappedCopy),
            20u);
}

// --- Type 5: SPE <-> SPE across nodes ------------------------------------------

int t5_parent(int /*index*/, void* /*arg*/) {
  PI_RunSPE(g_remote_spe, 0, nullptr);
  return 0;
}

PI_SPE_PROGRAM(t5_sender) {
  std::array<std::uint8_t, 333> data{};
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 3);
  }
  PI_Write(g_down, "%333b", data.data());
  return 0;
}

PI_SPE_PROGRAM(t5_receiver) {
  std::array<std::uint8_t, 333> data{};
  PI_Read(g_down, "%*b", 333, data.data());
  long long acc = 0;
  for (std::uint8_t v : data) acc += v;
  g_sum.store(acc);
  return 0;
}

TEST(CellPilot, Type5CrossNodeSpeToSpePreservesBytes) {
  cluster::Cluster machine = two_cells();
  g_sum.store(-1);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* parent = PI_CreateProcess(t5_parent, 0, nullptr);
    PI_PROCESS* sender = PI_CreateSPE(t5_sender, PI_MAIN, 0);
    g_remote_spe = PI_CreateSPE(t5_receiver, parent, 0);
    g_down = PI_CreateChannel(sender, g_remote_spe);
    PI_StartAll();
    PI_RunSPE(sender, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  long long expect = 0;
  for (std::size_t i = 0; i < 333; ++i) {
    expect += static_cast<std::uint8_t>(i * 3);
  }
  EXPECT_EQ(g_sum.load(), expect);
}

// --- SPE lifecycle --------------------------------------------------------------

PI_SPE_PROGRAM(count_run) {
  g_runs.fetch_add(1);
  return 0;
}

TEST(CellPilot, SpeProcessesCanRunRepeatedlyReusingHardware) {
  // The paper: SPEs "may need to be loaded and reloaded with codes".
  // 40 launches on a node with 16 physical SPEs forces reuse.
  cluster::Cluster machine = one_cell();
  g_runs.store(0);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(count_run, PI_MAIN, 0);
    PI_StartAll();
    for (int round = 0; round < 40; ++round) {
      PI_RunSPE(spe, round, nullptr);
      // Let the whole fleet drain every 8 launches so acquire never
      // exhausts the 16 physical SPEs.
      if (round % 8 == 7) {
        pilot::context().app().join_spe_threads(0);
      }
    }
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_runs.load(), 40);
}

PI_SPE_PROGRAM(hold_spe) {
  int v = 0;
  PI_Read(g_down, "%d", &v);  // parked until released
  return 0;
}

TEST(CellPilot, AllSpesBusyIsACapacityError) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1, /*spes_per_chip=*/1));
  cluster::Cluster machine(std::move(config));  // 2 SPEs on the blade
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(hold_spe, PI_MAIN, 0);
    g_down = PI_CreateChannel(PI_MAIN, spe);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_RunSPE(spe, 1, nullptr);
    PI_RunSPE(spe, 2, nullptr);  // third launch: no SPE free
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("busy"), std::string::npos);
}

// --- misuse diagnostics ----------------------------------------------------------

TEST(CellPilot, CreateSpeOnXeonParentIsRejected) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* xeon = PI_CreateProcess([](int, void*) { return 0; }, 0,
                                        nullptr);
    PI_CreateSPE(count_run, xeon, 0);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("non-Cell"), std::string::npos);
}

int foreign_parent(int /*index*/, void* /*arg*/) { return 0; }

TEST(CellPilot, OnlyTheParentMayRunAnSpe) {
  cluster::Cluster machine = two_cells();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* other = PI_CreateProcess(foreign_parent, 0, nullptr);
    PI_PROCESS* spe = PI_CreateSPE(count_run, other, 0);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);  // we are PI_MAIN, not the parent
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("parent"), std::string::npos);
}

TEST(CellPilot, RunSpeOnRankProcessIsRejected) {
  cluster::Cluster machine = two_cells();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* worker = PI_CreateProcess(foreign_parent, 0, nullptr);
    PI_StartAll();
    PI_RunSPE(worker, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("not an SPE process"), std::string::npos);
}

TEST(CellPilot, SpeAsBundleCommonEndpointIsRejected) {
  // The SPE collectives extension still forbids an SPE process *driving*
  // a collective: its slim runtime has no probe/fan-out machinery.
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(count_run, PI_MAIN, 0);
    PI_CHANNEL* chans[1] = {PI_CreateChannel(PI_MAIN, spe)};
    PI_CreateBundle(PI_GATHER, chans, 1);  // common reader would be the SPE
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("SPE"), std::string::npos);
}

// --- SPE collectives (extension: the paper's §VI future work) ----------------

PI_CHANNEL* g_coll_down[4];
PI_CHANNEL* g_coll_up[4];

PI_SPE_PROGRAM(coll_worker) {
  const int id = arg1;
  double seed = 0;
  PI_Read(g_coll_down[id], "%lf", &seed);       // broadcast leg
  const double result = seed * (id + 1);
  PI_Write(g_coll_up[id], "%d %lf", id, result);  // gather leg
  return 0;
}

TEST(CellPilot, BroadcastAndGatherSpanSpeWorkers) {
  cluster::Cluster machine = two_cells();
  std::array<int, 4> ids{};
  std::array<double, 4> results{};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spes[4];
    for (int i = 0; i < 4; ++i) {
      spes[i] = PI_CreateSPE(coll_worker, PI_MAIN, i);
      g_coll_down[i] = PI_CreateChannel(PI_MAIN, spes[i]);
      g_coll_up[i] = PI_CreateChannel(spes[i], PI_MAIN);
    }
    PI_BUNDLE* bcast = PI_CreateBundle(PI_BROADCAST, g_coll_down, 4);
    PI_BUNDLE* gather = PI_CreateBundle(PI_GATHER, g_coll_up, 4);
    PI_StartAll();
    for (int i = 0; i < 4; ++i) PI_RunSPE(spes[i], i, nullptr);
    PI_Broadcast(bcast, "%lf", 2.5);
    PI_Gather(gather, "%d %lf", ids.data(), results.data());
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(ids[static_cast<std::size_t>(i)], i);
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)], 2.5 * (i + 1));
  }
}

PI_SPE_PROGRAM(coll_select_worker) {
  PI_Write(g_coll_up[arg1], "%d", arg1);
  return 0;
}

TEST(CellPilot, SelectFindsReadySpeChannels) {
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spes[3];
    for (int i = 0; i < 3; ++i) {
      spes[i] = PI_CreateSPE(coll_select_worker, PI_MAIN, i);
      g_coll_up[i] = PI_CreateChannel(spes[i], PI_MAIN);
    }
    PI_BUNDLE* ready = PI_CreateBundle(PI_SELECT, g_coll_up, 3);
    PI_StartAll();
    for (int i = 0; i < 3; ++i) PI_RunSPE(spes[i], i, nullptr);
    int seen_mask = 0;
    for (int n = 0; n < 3; ++n) {
      const int who = PI_Select(ready);
      int v = -1;
      PI_Read(g_coll_up[who], "%d", &v);
      EXPECT_EQ(v, who);
      seen_mask |= 1 << who;
    }
    EXPECT_EQ(seen_mask, 0b111);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
}

// --- format agreement across the Co-Pilot ------------------------------------

PI_SPE_PROGRAM(bad_reader) {
  unsigned v[4];
  PI_Read(g_down, "%4u", v);  // writer sends %4d
  return 0;
}

TEST(CellPilot, FormatDisagreementThroughCopilotAborts) {
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(bad_reader, PI_MAIN, 0);
    g_down = PI_CreateChannel(PI_MAIN, spe);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    const int data[4] = {1, 2, 3, 4};
    PI_Write(g_down, "%4d", data);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("format"), std::string::npos);
}

// --- local-store budget ---------------------------------------------------------

PI_SPE_PROGRAM(ls_hog) {
  // The CellPilot runtime (10336 B), program text, stack, and a staging
  // buffer must all fit in 256 KB; a 280 KB message cannot be staged.
  std::vector<std::byte> big(280 * 1024);
  PI_Write(g_up, "%*b", static_cast<int>(big.size()), big.data());
  return 0;
}

TEST(CellPilot, MessagesBeyondLocalStoreFault) {
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(ls_hog, PI_MAIN, 0);
    g_up = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    std::vector<std::byte> sink(280 * 1024);
    PI_Read(g_up, "%*b", static_cast<int>(sink.size()), sink.data());
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("local store"), std::string::npos);
}

PI_SPE_PROGRAM(footprint_probe) {
  // The CellPilot runtime segment must be charged while the program runs.
  const auto& segs = cellsim::spu::self().allocator().segments();
  bool found = false;
  for (const auto& s : segs) {
    if (s.name == "text:cellpilot-runtime") {
      found = s.size == cellpilot::kCellPilotSpuFootprintBytes;
    }
  }
  g_runs.store(found ? 1 : 0);
  return 0;
}

TEST(CellPilot, RuntimeFootprintIsChargedAgainstLocalStore) {
  cluster::Cluster machine = one_cell();
  g_runs.store(-1);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(footprint_probe, PI_MAIN, 0);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_runs.load(), 1);
}

}  // namespace
