// Failure-injection tests: the library must fail loudly and cleanly — no
// hangs, no silent corruption — when programs misbehave mid-protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "core/protocol.hpp"

namespace {

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

PI_CHANNEL* g_ch = nullptr;
PI_CHANNEL* g_ch2 = nullptr;
std::atomic<std::uint32_t> g_status{0};

PI_SPE_PROGRAM(throwing_spe) {
  throw std::runtime_error("injected SPE failure");
}

TEST(Robustness, SpeProgramExceptionAbortsTheJobCleanly) {
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(throwing_spe, PI_MAIN, 0);
    g_ch = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    int v = 0;
    PI_Read(g_ch, "%d", &v);  // would hang forever without the abort
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("injected SPE failure"), std::string::npos);
}

PI_SPE_PROGRAM(rogue_requester) {
  // Bypass the runtime and write a garbage request straight into the
  // outbound mailbox: unknown opcode, nonexistent channel.
  using namespace cellsim::spu;
  spu_write_out_mbox(cellpilot::pack_op_channel(
      static_cast<cellpilot::Opcode>(9), 0x00FFFFF0));
  spu_write_out_mbox(0);
  spu_write_out_mbox(16);
  spu_write_out_mbox(0xDEAD);
  g_status.store(spu_read_in_mbox());
  return 0;
}

TEST(Robustness, CopilotRejectsMalformedRequestsWithProtocolError) {
  cluster::Cluster machine = one_cell();
  g_status.store(0xFFFFFFFF);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(rogue_requester, PI_MAIN, 0);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(g_status.load(),
            static_cast<std::uint32_t>(
                cellpilot::CompletionStatus::kProtocol));
}

int worker_that_throws(int /*index*/, void* /*arg*/) {
  throw std::logic_error("worker exploded");
}

PI_SPE_PROGRAM(parked_spe) {
  int v = 0;
  PI_Read(g_ch, "%d", &v);  // parked forever; must be released by abort
  return 0;
}

TEST(Robustness, RankFailureReleasesParkedSpeThreads) {
  // A worker rank throws while an SPE sits parked on a channel that will
  // never be written; the job must still terminate (no hang).
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(2));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* bad = PI_CreateProcess(worker_that_throws, 0, nullptr);
    (void)bad;
    PI_PROCESS* spe = PI_CreateSPE(parked_spe, PI_MAIN, 0);
    g_ch = PI_CreateChannel(PI_MAIN, spe);   // never written: parks the SPE
    g_ch2 = PI_CreateChannel(spe, PI_MAIN);  // never written: blocks main
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    int v = 0;
    PI_Read(g_ch2, "%d", &v);  // unblocked by the abort
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("worker exploded"), std::string::npos)
      << "actual reason: " << r.abort_reason;
}

TEST(Robustness, ReconfigureIsRejected) {
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_Configure(&argc, &argv);  // twice
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("twice"), std::string::npos);
}

PI_SPE_PROGRAM(quiet_spe) { return 0; }

TEST(Robustness, SpeLaunchAfterStopIsImpossible) {
  // PI_StopMain joins SPE threads before tearing down; a PI_RunSPE after
  // PI_StopMain is a phase error.
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(quiet_spe, PI_MAIN, 0);
    PI_StartAll();
    PI_StopMain(0);
    PI_RunSPE(spe, 0, nullptr);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
}

TEST(Robustness, RepeatedRunsOnFreshClustersAreIndependent) {
  // Back-to-back jobs must not leak state through the library's globals.
  for (int round = 0; round < 3; ++round) {
    cluster::Cluster machine = one_cell();
    g_status.store(111);
    const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
      PI_Configure(&argc, &argv);
      PI_PROCESS* spe = PI_CreateSPE(quiet_spe, PI_MAIN, 0);
      PI_StartAll();
      PI_RunSPE(spe, 0, nullptr);
      PI_StopMain(0);
      return 0;
    });
    ASSERT_FALSE(r.aborted) << "round " << round << ": " << r.abort_reason;
  }
}

}  // namespace
