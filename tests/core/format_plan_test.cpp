// Tests for the cached format plans of the compiled data plane: wire
// signatures precomputed at first lookup must be indistinguishable — in
// value and in diagnostics — from the per-call parses they replaced.
#include "core/router.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "cluster/cluster.hpp"
#include "core/cellpilot.hpp"
#include "pilot/format.hpp"

namespace {

using namespace cellpilot;

// --- plan caching and signature stability -----------------------------------

TEST(FormatPlan, CachedSignatureMatchesFreshParse) {
  const char* formats[] = {"%d", "%u %lf", "%100Lf %c", "%16b %4hd"};
  FormatCache cache;
  for (const char* fmt : formats) {
    const FormatPlan& plan = cache.lookup(fmt);
    EXPECT_FALSE(plan.has_star) << fmt;
    const pilot::Format fresh = pilot::parse_format(fmt);
    EXPECT_EQ(plan.wire_signature, pilot::signature(fresh)) << fmt;
    EXPECT_EQ(plan.payload_bytes, fresh.payload_bytes()) << fmt;
  }
}

TEST(FormatPlan, LookupParsesOnlyOnFirstSight) {
  FormatCache cache;
  pilot::reset_format_parse_count();
  const FormatPlan& first = cache.lookup("%d %f");
  EXPECT_EQ(pilot::format_parse_count(), 1u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(&cache.lookup("%d %f"), &first);
  }
  EXPECT_EQ(pilot::format_parse_count(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(FormatPlan, StarFormatsResolveSignaturePerCall) {
  FormatCache cache;
  const FormatPlan& plan = cache.lookup("%*b");
  EXPECT_TRUE(plan.has_star);

  // A '*' count resolved to n must be wire-compatible with the literal
  // count-n format: both sides of a channel may pick either spelling.
  const std::uint32_t four[] = {4};
  const std::uint32_t eight[] = {8};
  EXPECT_EQ(pilot::signature(plan.parsed, four),
            pilot::signature(pilot::parse_format("%4b")));
  EXPECT_EQ(pilot::signature(plan.parsed, eight),
            pilot::signature(pilot::parse_format("%8b")));
  EXPECT_NE(pilot::signature(plan.parsed, four),
            pilot::signature(plan.parsed, eight));
}

TEST(FormatPlan, CacheIsKeyedByContentNotAddress) {
  // A reused heap or stack buffer can present a different format string at
  // the same address; the cache must not serve the stale plan.
  char buf[16];
  FormatCache cache;
  std::strcpy(buf, "%d");
  const FormatPlan* int_plan = &cache.lookup(buf);
  EXPECT_EQ(int_plan->text, "%d");

  std::strcpy(buf, "%lf");
  const FormatPlan& double_plan = cache.lookup(buf);
  EXPECT_EQ(double_plan.text, "%lf");
  EXPECT_NE(&double_plan, int_plan);
  EXPECT_EQ(cache.size(), 2u);

  // And the first plan is still served, now from a third address.
  const std::string again = "%d";
  EXPECT_EQ(&cache.lookup(again.c_str()), int_plan);
}

// --- end-to-end through the cached dispatch path ----------------------------

PI_SPE_PROGRAM(fp_star_reader) {
  PI_CHANNEL* in = static_cast<PI_CHANNEL*>(arg2);
  std::byte buf[64];
  for (int n = 1; n <= arg1; n *= 2) {
    PI_Read(in, "%*b", n, buf);
  }
  // Literal-count read against a star-format writer: same signature.
  PI_Read(in, "%64b", buf);
  return 0;
}

TEST(FormatPlanE2E, StarCountsVaryPerMessageOverOneChannel) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));

  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(fp_star_reader, PI_MAIN, 0);
    PI_CHANNEL* ch = PI_CreateChannel(PI_MAIN, spe);
    PI_StartAll();
    constexpr int kMax = 32;
    PI_RunSPE(spe, kMax, ch);
    std::byte buf[64] = {};
    for (int n = 1; n <= kMax; n *= 2) {
      PI_Write(ch, "%*b", n, buf);
    }
    PI_Write(ch, "%*b", 64, buf);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

int fp_uint_reader(int /*index*/, void* arg) {
  PI_CHANNEL* in = static_cast<PI_CHANNEL*>(arg);
  unsigned v = 0;
  PI_Read(in, "%u", &v);  // writer sends %d
  return 0;
}

TEST(FormatPlanE2E, Type1MismatchStillDiagnosedThroughCache) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(2));
  cluster::Cluster machine(std::move(config));

  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(fp_uint_reader, 0, nullptr);
    PI_CHANNEL* ch = PI_CreateChannel(PI_MAIN, w);
    w->ptr_arg = ch;
    PI_StartAll();
    PI_Write(ch, "%d", 5);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("does not match"), std::string::npos)
      << r.abort_reason;
}

PI_SPE_PROGRAM(fp_wrong_spe_reader) {
  PI_CHANNEL* in = static_cast<PI_CHANNEL*>(arg2);
  unsigned v = 0;
  PI_Read(in, "%u", &v);  // writer sends %d
  return 0;
}

TEST(FormatPlanE2E, Type2MismatchStillDiagnosedThroughCache) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));

  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(fp_wrong_spe_reader, PI_MAIN, 0);
    PI_CHANNEL* ch = PI_CreateChannel(PI_MAIN, spe);
    PI_StartAll();
    PI_RunSPE(spe, 0, ch);
    PI_Write(ch, "%d", 5);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("does not match"), std::string::npos)
      << r.abort_reason;
}

}  // namespace
