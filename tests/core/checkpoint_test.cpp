// checkpoint_test.cpp — the coordinated checkpoint's two contracts.
//
// File format: a checkpoint serializes to PILS-framed, CRC-guarded
// sections whose bytes are a pure function of the Image (golden bytes for
// the framing live in wire_golden_test); any flipped byte or truncation
// must be detected offline, because the restore path trusts whatever
// deserialize() accepts.
//
// Cut coordination: shards land per node, commits fire when every Cell
// node has contributed, stale/duplicate contributions are no-ops, and the
// committed frontier is *consistent* — no channel records a receive on one
// side of the cut whose send is missing from the other side (the
// Chandy–Lamport property the marker flood exists to enforce).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/cellpilot.hpp"
#include "core/checkpoint.hpp"
#include "core/copilot.hpp"
#include "pilot/wire.hpp"

namespace {

namespace ckpt = cellpilot::ckpt;

std::string tmp_path(const std::string& name) {
  return ::testing::TempDir() + "cellpilot_" + name + ".ckpt";
}

std::vector<std::byte> read_bytes(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::vector<std::byte> out;
  char c;
  while (f.get(c)) out.push_back(static_cast<std::byte>(c));
  return out;
}

/// A representative image touching every section type.
ckpt::Image sample_image() {
  ckpt::Image img;
  img.cut = 3;
  img.channels = 2;
  img.begin = 1000;
  img.commit = 2500;
  img.epochs = {0, 4};

  ckpt::Shard s0;
  s0.node = 0;
  s0.stamp = 1000;
  s0.serviced = 12;
  s0.journal.push_back({/*pid=*/1, /*channel=*/0, /*writes=*/6, /*reads=*/0,
                        /*reads_crc=*/0xDEADBEEF});
  ckpt::ParkedOp op;
  op.channel = 1;
  op.pid = 1;
  op.opcode = 2;
  op.signature = 0x496F0F97;
  op.length = 4;
  op.token = 7;
  op.is_write = 1;
  op.is_async = 1;
  s0.parked.push_back(op);
  ckpt::SpeImage spe;
  spe.pid = 1;
  spe.clock = 990;
  spe.name = "node0.cell0.spe0";
  spe.ls = {std::byte{0x11}, std::byte{0x22}, std::byte{0x33}};
  s0.images.push_back(spe);
  img.shards.push_back(std::move(s0));

  ckpt::Shard s1;
  s1.node = 1;
  s1.stamp = 2500;
  s1.serviced = 9;
  s1.journal.push_back({/*pid=*/2, /*channel=*/0, /*writes=*/0, /*reads=*/5,
                        /*reads_crc=*/0xCAFEF00D});
  img.shards.push_back(std::move(s1));

  mpisim::reliable::LinkSnapshot link;
  link.from = 2;
  link.to = 3;
  link.next_seq = 17;
  link.expected = 16;
  link.held = 1;
  link.stashed = 1;
  img.links.push_back(link);
  return img;
}

TEST(CheckpointFile, SerializeDeserializeRoundTrip) {
  const ckpt::Image img = sample_image();
  const std::vector<std::byte> bytes = ckpt::serialize(img);

  const ckpt::ParseResult parsed = ckpt::deserialize(bytes);
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const ckpt::Image& back = parsed.image;
  EXPECT_EQ(back.cut, img.cut);
  EXPECT_EQ(back.channels, img.channels);
  EXPECT_EQ(back.begin, img.begin);
  EXPECT_EQ(back.commit, img.commit);
  EXPECT_EQ(back.epochs, img.epochs);
  ASSERT_EQ(back.shards.size(), 2u);
  EXPECT_EQ(back.shards[0].node, 0);
  EXPECT_EQ(back.shards[0].stamp, 1000);
  EXPECT_EQ(back.shards[0].serviced, 12u);
  ASSERT_EQ(back.shards[0].journal.size(), 1u);
  EXPECT_EQ(back.shards[0].journal[0].writes, 6u);
  EXPECT_EQ(back.shards[0].journal[0].reads_crc, 0xDEADBEEFu);
  ASSERT_EQ(back.shards[0].parked.size(), 1u);
  EXPECT_EQ(back.shards[0].parked[0].signature, 0x496F0F97u);
  EXPECT_EQ(back.shards[0].parked[0].is_async, 1u);
  ASSERT_EQ(back.shards[0].images.size(), 1u);
  EXPECT_EQ(back.shards[0].images[0].name, "node0.cell0.spe0");
  EXPECT_EQ(back.shards[0].images[0].ls, img.shards[0].images[0].ls);
  ASSERT_EQ(back.shards[1].journal.size(), 1u);
  EXPECT_EQ(back.shards[1].journal[0].reads, 5u);
  ASSERT_EQ(back.links.size(), 1u);
  EXPECT_EQ(back.links[0].next_seq, 17u);
  EXPECT_EQ(back.links[0].stashed, 1u);
}

TEST(CheckpointFile, SerializationIsAPureFunctionOfTheImage) {
  // The acceptance bar is byte-identical checkpoints per seed; the file
  // layer's share of that is bit-reproducible serialization.
  const ckpt::Image img = sample_image();
  EXPECT_EQ(ckpt::serialize(img), ckpt::serialize(sample_image()));
}

TEST(CheckpointFile, FlippedByteFailsTheSectionCrc) {
  std::vector<std::byte> bytes = ckpt::serialize(sample_image());
  // Flip one byte inside the header section's body (past WireHeader+CRC).
  bytes[sizeof(pilot::WireHeader) + 6] ^= std::byte{0x01};
  const ckpt::ParseResult parsed = ckpt::deserialize(bytes);
  EXPECT_FALSE(parsed.ok);
  EXPECT_NE(parsed.error.find("CRC"), std::string::npos) << parsed.error;
}

TEST(CheckpointFile, TruncationNeverPassesVerification) {
  const std::vector<std::byte> bytes = ckpt::serialize(sample_image());
  // A checkpoint cut short at *any* byte must fail — a crash mid-write
  // must never masquerade as a committed checkpoint.
  for (std::size_t keep : {bytes.size() - 1, bytes.size() / 2,
                           sizeof(pilot::WireHeader) + 2, std::size_t{0}}) {
    const ckpt::ParseResult parsed = ckpt::deserialize(
        std::span<const std::byte>(bytes.data(), keep));
    EXPECT_FALSE(parsed.ok) << "accepted a " << keep << "-byte prefix";
  }
}

TEST(CheckpointFile, GarbageIsRejected) {
  std::vector<std::byte> garbage(64, std::byte{0xAB});
  EXPECT_FALSE(ckpt::deserialize(garbage).ok);
  EXPECT_FALSE(ckpt::deserialize({}).ok);
}

// --- cut coordination (session semantics, no cluster) --------------------

class CheckpointSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = tmp_path("session");
    std::remove(path_.c_str());
    auto& s = ckpt::CheckpointSession::global();
    s.configure(path_, 4);
    s.begin_job(/*cell_nodes=*/2);
  }
  void TearDown() override {
    auto& s = ckpt::CheckpointSession::global();
    s.end_job();
    s.configure("", 0);  // disarm: other tests must see a clean global
    std::remove(path_.c_str());
  }

  static ckpt::Shard shard(std::int32_t node, simtime::SimTime stamp) {
    ckpt::Shard s;
    s.node = node;
    s.stamp = stamp;
    s.serviced = 4;
    return s;
  }

  std::string path_;
};

TEST_F(CheckpointSessionTest, CommitsOnlyWhenEveryCellNodeContributed) {
  auto& s = ckpt::CheckpointSession::global();
  ASSERT_TRUE(s.armed());
  EXPECT_EQ(s.next_cut(0), 1u);

  EXPECT_FALSE(s.contribute(1, shard(0, 100), {0}, {}));
  EXPECT_FALSE(s.has_committed()) << "half a frontier must never commit";

  EXPECT_TRUE(s.contribute(1, shard(1, 140), {0}, {}));
  EXPECT_TRUE(s.has_committed());
  EXPECT_EQ(s.committed_cut(), 1u);

  const ckpt::ParseResult parsed = ckpt::deserialize(read_bytes(path_));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.image.cut, 1u);
  ASSERT_EQ(parsed.image.shards.size(), 2u);
  EXPECT_EQ(parsed.image.begin, 100);
  EXPECT_EQ(parsed.image.commit, 140);
}

TEST_F(CheckpointSessionTest, StaleAndDuplicateContributionsAreNoOps) {
  auto& s = ckpt::CheckpointSession::global();
  EXPECT_FALSE(s.contribute(1, shard(0, 100), {0}, {}));
  // Node 0 already contributed to cut 1: a late marker for the same cut
  // must not double-count it toward the commit quorum.
  EXPECT_FALSE(s.contribute(1, shard(0, 101), {0}, {}));
  EXPECT_FALSE(s.needs_contribution(0, 1));
  EXPECT_TRUE(s.needs_contribution(0, 2));
  EXPECT_FALSE(s.has_committed());
  // The quorum completes with the *other* node, not the duplicate.
  EXPECT_TRUE(s.contribute(1, shard(1, 140), {0}, {}));
}

TEST_F(CheckpointSessionTest, MarkerForAFutureCutFastForwardsTheOrdinal) {
  auto& s = ckpt::CheckpointSession::global();
  // Node 1 hears about cut 2 (marker) before ever reaching its own second
  // interval: contributing to 2 must retire 1 and 2 for that node.
  EXPECT_FALSE(s.contribute(2, shard(1, 90), {0}, {}));
  EXPECT_EQ(s.next_cut(1), 3u);
  EXPECT_FALSE(s.needs_contribution(1, 2));
  // Cut 2 then commits when node 0 reaches it; the stale cut 1 never can.
  EXPECT_TRUE(s.contribute(2, shard(0, 150), {0}, {}));
  EXPECT_EQ(s.committed_cut(), 2u);
}

TEST_F(CheckpointSessionTest, DisarmedSessionIsInertAndFree) {
  auto& s = ckpt::CheckpointSession::global();
  s.configure("", 0);
  EXPECT_FALSE(s.armed());
  EXPECT_EQ(s.every(), 0u);
}

// --- frontier consistency across a real two-blade run --------------------

PI_CHANNEL* g_cross = nullptr;  ///< SPE(node0) -> SPE(node1), cross-blade
PI_CHANNEL* g_sum = nullptr;    ///< reader SPE -> PI_MAIN
PI_PROCESS* g_reader = nullptr;
std::atomic<int> g_sum_value{-1};

constexpr int kFrontierBurst = 24;

PI_SPE_PROGRAM(frontier_writer) {
  for (int i = 0; i < kFrontierBurst; ++i) PI_Write(g_cross, "%d", i + 1);
  return 0;
}

PI_SPE_PROGRAM(frontier_reader) {
  int sum = 0;
  for (int i = 0; i < kFrontierBurst; ++i) {
    int v = 0;
    PI_Read(g_cross, "%d", &v);
    sum += v;
  }
  PI_Write(g_sum, "%d", sum);
  return 0;
}

int frontier_parent(int /*arg*/, void* /*ptr*/) {
  PI_RunSPE(g_reader, 0, nullptr);
  return 0;
}

TEST(CheckpointFrontier, NoMessageCrossesTheCutInOneDirectionOnly) {
  const std::string path = tmp_path("frontier");
  std::remove(path.c_str());

  cluster::Cluster machine(cluster::ClusterConfig::two_cells());
  cellpilot::RunOptions opts;
  // A small interval forces several cuts mid-burst; node1 joins each cut
  // via the PILS marker flooding down the cross-blade relay route.
  opts.args = {"-pickpt=" + path, "-pickptevery=5"};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* parent = PI_CreateProcess(frontier_parent, 0, nullptr);
        PI_PROCESS* writer = PI_CreateSPE(frontier_writer, PI_MAIN, 0);
        g_reader = PI_CreateSPE(frontier_reader, parent, 0);
        g_cross = PI_CreateChannel(writer, g_reader);
        g_sum = PI_CreateChannel(g_reader, PI_MAIN);
        PI_StartAll();
        PI_RunSPE(writer, 0, nullptr);
        int sum = -1;
        PI_Read(g_sum, "%d", &sum);
        g_sum_value.store(sum);
        PI_StopMain(0);
        return 0;
      },
      opts);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(g_sum_value.load(), kFrontierBurst * (kFrontierBurst + 1) / 2);

  const ckpt::ParseResult parsed = ckpt::deserialize(read_bytes(path));
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_GE(parsed.image.cut, 1u);
  ASSERT_EQ(parsed.image.shards.size(), 2u)
      << "both blades must sit on the committed frontier";

  // The Chandy–Lamport consistency property: for every channel, the reads
  // recorded at the cut are a prefix of the writes recorded at the cut —
  // a message received before the frontier must have been sent before it.
  std::map<int, std::uint64_t> writes_at_cut;
  std::map<int, std::uint64_t> reads_at_cut;
  for (const ckpt::Shard& shard : parsed.image.shards) {
    for (const ckpt::JournalMark& m : shard.journal) {
      writes_at_cut[m.channel] += m.writes;
      reads_at_cut[m.channel] += m.reads;
    }
  }
  for (const auto& [channel, reads] : reads_at_cut) {
    EXPECT_LE(reads, writes_at_cut[channel])
        << "channel " << channel
        << " received a message the frontier never saw sent";
  }
  // The cross-blade channel must actually have progressed on both sides,
  // or the property above is vacuously true.
  std::uint64_t total_writes = 0;
  for (const auto& [channel, writes] : writes_at_cut) total_writes += writes;
  EXPECT_GT(total_writes, 0u) << "the cut landed before any traffic";

  std::remove(path.c_str());
  ckpt::CheckpointSession::global().configure("", 0);
}

}  // namespace
