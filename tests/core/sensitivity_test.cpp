// Cost-model sensitivity properties: raising any latency knob can never
// make a PingPong faster, and knobs affect exactly the channel types whose
// protocol touches them.
#include <gtest/gtest.h>

#include "benchkit/pingpong.hpp"

namespace {

using benchkit::Method;
using benchkit::PingPongSpec;
using cellpilot::ChannelType;

constexpr int kReps = 20;

double measure(ChannelType type, Method method,
               const simtime::CostModel& cost) {
  PingPongSpec spec;
  spec.type = type;
  spec.bytes = 64;
  spec.reps = kReps;
  return benchkit::pingpong_us(spec, method, cost);
}

/// One knob mutation under test.
struct Knob {
  const char* name;
  void (*bump)(simtime::CostModel&);
};

const Knob kKnobs[] = {
    {"net_latency", [](simtime::CostModel& m) { m.net_latency *= 2; }},
    {"mpi_cpu_ppe", [](simtime::CostModel& m) { m.mpi_cpu_ppe *= 2; }},
    {"mpi_local_latency",
     [](simtime::CostModel& m) { m.mpi_local_latency *= 2; }},
    {"mbox_ppe_read", [](simtime::CostModel& m) { m.mbox_ppe_read *= 4; }},
    {"copilot_service",
     [](simtime::CostModel& m) { m.copilot_service *= 2; }},
    {"dma_setup", [](simtime::CostModel& m) { m.dma_setup *= 2; }},
    {"copy_setup", [](simtime::CostModel& m) { m.copy_setup *= 2; }},
    {"spu_call_overhead",
     [](simtime::CostModel& m) { m.spu_call_overhead *= 3; }},
    {"pilot_call_overhead",
     [](simtime::CostModel& m) { m.pilot_call_overhead *= 3; }},
};

class KnobMonotonicity
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(KnobMonotonicity, RaisingACostNeverSpeedsUpAnyMethod) {
  const auto [knob_index, type_int] = GetParam();
  const Knob& knob = kKnobs[knob_index];
  const auto type = static_cast<ChannelType>(type_int);

  simtime::CostModel base = simtime::default_cost_model();
  simtime::CostModel bumped = base;
  knob.bump(bumped);

  for (Method method :
       {Method::kCellPilot, Method::kDma, Method::kCopy}) {
    const double before = measure(type, method, base);
    const double after = measure(type, method, bumped);
    EXPECT_GE(after, before - 1e-9)
        << knob.name << " on type " << type_int << " with "
        << benchkit::to_string(method);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KnobsAndTypes, KnobMonotonicity,
    ::testing::Combine(::testing::Range(std::size_t{0},
                                        std::size_t{std::size(kKnobs)}),
                       ::testing::Values(1, 2, 4, 5)));

TEST(KnobTargeting, NetworkLatencyLeavesOnNodeTypesAlone) {
  simtime::CostModel base = simtime::default_cost_model();
  simtime::CostModel slow_net = base;
  slow_net.net_latency *= 4;
  for (ChannelType type : {ChannelType::kType2, ChannelType::kType4}) {
    EXPECT_DOUBLE_EQ(measure(type, Method::kCellPilot, base),
                     measure(type, Method::kCellPilot, slow_net));
  }
  for (ChannelType type : {ChannelType::kType1, ChannelType::kType3,
                           ChannelType::kType5}) {
    EXPECT_GT(measure(type, Method::kCellPilot, slow_net),
              measure(type, Method::kCellPilot, base));
  }
}

TEST(KnobTargeting, CopilotServiceLeavesType1Alone) {
  simtime::CostModel base = simtime::default_cost_model();
  simtime::CostModel slow_copilot = base;
  slow_copilot.copilot_service *= 4;
  EXPECT_DOUBLE_EQ(measure(ChannelType::kType1, Method::kCellPilot, base),
                   measure(ChannelType::kType1, Method::kCellPilot,
                           slow_copilot));
  EXPECT_GT(
      measure(ChannelType::kType2, Method::kCellPilot, slow_copilot),
      measure(ChannelType::kType2, Method::kCellPilot, base));
}

TEST(KnobTargeting, DmaSetupOnlyMovesTheDmaColumn) {
  simtime::CostModel base = simtime::default_cost_model();
  simtime::CostModel slow_dma = base;
  slow_dma.dma_setup *= 2;
  EXPECT_GT(measure(ChannelType::kType2, Method::kDma, slow_dma),
            measure(ChannelType::kType2, Method::kDma, base));
  EXPECT_DOUBLE_EQ(measure(ChannelType::kType2, Method::kCopy, slow_dma),
                   measure(ChannelType::kType2, Method::kCopy, base));
  EXPECT_DOUBLE_EQ(
      measure(ChannelType::kType2, Method::kCellPilot, slow_dma),
      measure(ChannelType::kType2, Method::kCellPilot, base));
}

}  // namespace
