// Unit tests for the compiled data plane (core/router): route compilation
// for every Table I channel type, configuration-phase misuse, and the
// once-per-channel guarantee for channel-type resolution.
#include "core/router.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "cluster/cluster.hpp"
#include "core/cellpilot.hpp"
#include "pilot/context.hpp"
#include "pilot/errors.hpp"

namespace {

using namespace cellpilot;

PI_SPE_PROGRAM(rt_idle) { return 0; }

PI_SPE_PROGRAM(rt_echo_once) {
  int v = 0;
  PI_CHANNEL* in = static_cast<PI_CHANNEL*>(arg2);
  for (int i = 0; i < arg1; ++i) PI_Read(in, "%d", &v);
  return v;
}

// --- golden routes over the 3-node cell/cell/xeon machine -------------------
//
// The expected legs are docs/PROTOCOL.md's "Channel taxonomy" table made
// concrete: type 1 is a direct rank->rank MPI leg; types 2/3 substitute the
// SPE's Co-Pilot rank on the MPI leg; type 4 pairs two mailbox requests at
// one Co-Pilot (no MPI leg at all); type 5 relays Co-Pilot to Co-Pilot.

TEST(Router, CompilesGoldenRoutesForAllFiveTypes) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));

  std::atomic<bool> checked{false};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* ppe1 = PI_CreateProcess([](int, void*) { return 0; }, 0,
                                        nullptr);  // node 1 PPE
    PI_PROCESS* xeon = PI_CreateProcess([](int, void*) { return 0; }, 0,
                                        nullptr);  // node 2 Xeon
    PI_PROCESS* spe0 = PI_CreateSPE(rt_idle, PI_MAIN, 0);   // node 0
    PI_PROCESS* spe0b = PI_CreateSPE(rt_idle, PI_MAIN, 1);  // node 0
    PI_PROCESS* spe1 = PI_CreateSPE(rt_idle, ppe1, 0);      // node 1

    PI_CHANNEL* t1 = PI_CreateChannel(PI_MAIN, xeon);   // type 1
    PI_CHANNEL* t2 = PI_CreateChannel(PI_MAIN, spe0);   // type 2
    PI_CHANNEL* t2r = PI_CreateChannel(spe0, PI_MAIN);  // type 2, SPE writes
    PI_CHANNEL* t3 = PI_CreateChannel(xeon, spe0);      // type 3, Xeon writes
    PI_CHANNEL* t4 = PI_CreateChannel(spe0, spe0b);     // type 4
    PI_CHANNEL* t5 = PI_CreateChannel(spe0, spe1);      // type 5

    // (No pre-StartAll null check here: configuration is SPMD, and a
    // faster rank may legitimately have reached PI_StartAll already.)
    PI_StartAll();

    auto& app = pilot::context().app();
    cluster::Cluster& cl = app.cluster();
    const mpisim::Rank main_rank = PI_MAIN->rank;

    for (PI_CHANNEL* ch : {t1, t2, t2r, t3, t4, t5}) {
      EXPECT_NE(ch->route, nullptr) << ch->name;
      if (ch->route == nullptr) {
        PI_StopMain(0);
        return 1;
      }
    }

    // Type 1: direct rank->rank leg, no transport, no Co-Pilot.
    {
      const Route& rt = *t1->route;
      EXPECT_EQ(rt.type, ChannelType::kType1);
      EXPECT_EQ(rt.tag, t1->tag());
      EXPECT_FALSE(rt.needs_transport);
      EXPECT_EQ(rt.write_dest, xeon->rank);
      EXPECT_EQ(rt.read_source, main_rank);
      EXPECT_EQ(rt.copilot_write, CopilotWriteAction::kNone);
      EXPECT_EQ(rt.copilot_read, CopilotReadAction::kNone);
      EXPECT_TRUE(rt.writer_big_endian) << "PI_MAIN runs on a Cell PPE";
    }
    // Type 2, rank writes: send lands at node 0's Co-Pilot, which holds the
    // frame until the SPE's read request arrives.
    {
      const Route& rt = *t2->route;
      EXPECT_EQ(rt.type, ChannelType::kType2);
      EXPECT_TRUE(rt.needs_transport);
      EXPECT_FALSE(rt.writer_is_spe);
      EXPECT_TRUE(rt.reader_is_spe);
      EXPECT_EQ(rt.write_dest, cl.copilot_rank(0));
      EXPECT_EQ(rt.copilot_read, CopilotReadAction::kAwaitMpi);
      EXPECT_EQ(rt.copilot_read_source, main_rank);
    }
    // Type 2, SPE writes: the Co-Pilot relays out of local store straight
    // to the reading rank; the reader receives from the Co-Pilot.
    {
      const Route& rt = *t2r->route;
      EXPECT_EQ(rt.type, ChannelType::kType2);
      EXPECT_TRUE(rt.writer_is_spe);
      EXPECT_EQ(rt.copilot_write, CopilotWriteAction::kRelayToRank);
      EXPECT_EQ(rt.copilot_write_dest, main_rank);
      EXPECT_EQ(rt.read_source, cl.copilot_rank(0));
      EXPECT_TRUE(rt.writer_big_endian) << "the writing SPE is on a Cell";
    }
    // Type 3: as type 2 but across the network; a Xeon writer produces
    // little-endian payloads ("receiver makes right").
    {
      const Route& rt = *t3->route;
      EXPECT_EQ(rt.type, ChannelType::kType3);
      EXPECT_EQ(rt.write_dest, cl.copilot_rank(0));
      EXPECT_EQ(rt.copilot_read, CopilotReadAction::kAwaitMpi);
      EXPECT_EQ(rt.copilot_read_source, xeon->rank);
      EXPECT_FALSE(rt.writer_big_endian) << "the writer runs on x86-64";
    }
    // Type 4: both requests pair at node 0's Co-Pilot; there is no MPI leg,
    // so neither rank-side leg is set.
    {
      const Route& rt = *t4->route;
      EXPECT_EQ(rt.type, ChannelType::kType4);
      EXPECT_EQ(rt.copilot_write, CopilotWriteAction::kPairLocal);
      EXPECT_EQ(rt.copilot_read, CopilotReadAction::kPairLocal);
      EXPECT_EQ(rt.write_dest, -1);
      EXPECT_EQ(rt.read_source, -1);
    }
    // Type 5: writer Co-Pilot -> MPI -> reader Co-Pilot.
    {
      const Route& rt = *t5->route;
      EXPECT_EQ(rt.type, ChannelType::kType5);
      EXPECT_EQ(rt.copilot_write, CopilotWriteAction::kRelayToPeer);
      EXPECT_EQ(rt.copilot_write_dest, cl.copilot_rank(1));
      EXPECT_EQ(rt.copilot_read, CopilotReadAction::kAwaitMpi);
      EXPECT_EQ(rt.copilot_read_source, cl.copilot_rank(0));
    }
    // The router hands back the same objects the channels point at.
    EXPECT_EQ(&app.router().route(t1->id), t1->route);
    EXPECT_EQ(&app.router().route(t5->id), t5->route);

    checked.store(true);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_TRUE(checked.load());
}

// --- error cases ------------------------------------------------------------

TEST(Router, UnplacedSpeEndpointIsAUsageError) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));

  std::atomic<bool> threw{false};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(rt_idle, PI_MAIN, 0);
    PI_CHANNEL* ch = PI_CreateChannel(PI_MAIN, spe);
    const int placed = spe->node;
    spe->node = -1;  // simulate a placement bug
    try {
      compile_route(pilot::context().app(), *ch);
    } catch (const pilot::PilotError& e) {
      EXPECT_EQ(e.code(), pilot::ErrorCode::kUsage);
      EXPECT_NE(std::string(e.what()).find("has no node placement"),
                std::string::npos)
          << e.what();
      threw.store(true);
    }
    spe->node = placed;
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_TRUE(threw.load());
}

TEST(Router, RouteAccessBeforeCompileIsConfigPhaseMisuse) {
  Router router;
  EXPECT_FALSE(router.compiled());
  try {
    router.route(0);
    FAIL() << "expected PilotError";
  } catch (const pilot::PilotError& e) {
    EXPECT_EQ(e.code(), pilot::ErrorCode::kUsage);
    EXPECT_NE(std::string(e.what()).find("not compiled"), std::string::npos);
  }
  EXPECT_THROW(router.bundle_formats(0), pilot::PilotError);
}

TEST(Router, UnknownChannelIdIsInternal) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));

  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_StartAll();
    try {
      pilot::context().app().router().route(12345);
      ADD_FAILURE() << "expected PilotError";
    } catch (const pilot::PilotError& e) {
      EXPECT_EQ(e.code(), pilot::ErrorCode::kInternal);
    }
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

// --- once-per-channel, not once-per-message ---------------------------------

TEST(Router, ResolutionAndParsingHappenOncePerChannelPerRun) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));

  constexpr int kMessages = 16;
  reset_route_resolve_count();
  pilot::reset_format_parse_count();

  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(rt_echo_once, PI_MAIN, 0);
    PI_CHANNEL* ch = PI_CreateChannel(PI_MAIN, spe);
    PI_StartAll();
    PI_RunSPE(spe, kMessages, ch);
    for (int i = 0; i < kMessages; ++i) PI_Write(ch, "%d", i);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;

  // One channel in the app: its type is resolved exactly once, at route
  // compilation — not 16 times.
  EXPECT_EQ(route_resolve_count(), 1u);
  // "%d" is parsed once per endpoint cache (writer + reader), regardless of
  // message count.
  EXPECT_EQ(pilot::format_parse_count(), 2u);
}

}  // namespace
