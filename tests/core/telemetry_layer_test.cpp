// telemetry_layer_test.cpp — the CellPilot vocabulary over the windowed
// time-series engine: the report serializer (parsed back through the same
// benchjson reader pitop uses), the scoped capture harness, end-to-end seam
// coverage on a type-2 job, byte-determinism of the report, virtual-time
// neutrality of arming, and the empty-env disarm baselines shared with the
// trace / metrics / flight-recorder sessions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchkit/benchjson.hpp"
#include "benchkit/pingpong.hpp"
#include "core/cellpilot.hpp"
#include "core/flightrec.hpp"
#include "core/metrics.hpp"
#include "core/telemetry.hpp"
#include "core/trace.hpp"
#include "pilot/errors.hpp"
#include "simtime/timeseries.hpp"

namespace {

namespace ts = simtime::timeseries;
using cellpilot::telemetry::JobTelemetry;
using cellpilot::telemetry::ScopedTelemetryCapture;
using cellpilot::telemetry::telemetry_report_json;

// --- report serializer ---------------------------------------------------

std::vector<JobTelemetry> sample_jobs() {
  JobTelemetry jt;
  jt.job = 1;
  ts::Series s;
  s.key.kind = ts::Kind::kDelivered;
  s.key.route_type = 2;
  s.key.channel = 0;
  s.key.entity = "node0.copilot";
  ts::Cell cell;
  cell.add(32);
  cell.add(32);
  s.windows.emplace_back(4, cell);
  jt.series.push_back(s);
  return {jt};
}

TEST(TelemetryReportJson, RoundTripsThroughTheSharedBenchjsonReader) {
  const std::string json =
      telemetry_report_json(sample_jobs(), simtime::us(50));
  benchkit::Doc doc;
  std::string error;
  ASSERT_TRUE(benchkit::parse(json, &doc, &error)) << error;

  std::string bench;
  EXPECT_TRUE(benchkit::get_string(doc.meta, "bench", &bench));
  EXPECT_EQ(bench, "telemetry");
  std::string unit;
  EXPECT_TRUE(benchkit::get_string(doc.meta, "unit", &unit));
  EXPECT_EQ(unit, "virtual_ns");
  double window_ns = 0;
  EXPECT_TRUE(benchkit::get_number(doc.meta, "windowNs", &window_ns));
  EXPECT_EQ(window_ns, 50000);
  double jobs = 0;
  EXPECT_TRUE(benchkit::get_number(doc.meta, "jobs", &jobs));
  EXPECT_EQ(jobs, 1);

  ASSERT_EQ(doc.rows.size(), 1u);
  std::string kind;
  EXPECT_TRUE(benchkit::get_string(doc.rows[0], "kind", &kind));
  EXPECT_EQ(kind, "delivered");
  double value = 0;
  EXPECT_TRUE(benchkit::get_number(doc.rows[0], "win", &value));
  EXPECT_EQ(value, 4);
  EXPECT_TRUE(benchkit::get_number(doc.rows[0], "count", &value));
  EXPECT_EQ(value, 2);
  EXPECT_TRUE(benchkit::get_number(doc.rows[0], "sum", &value));
  EXPECT_EQ(value, 64);
}

TEST(TelemetryReportJson, SerializationIsAPureFunctionOfTheReports) {
  const std::vector<JobTelemetry> jobs = sample_jobs();
  EXPECT_EQ(telemetry_report_json(jobs, simtime::us(50)),
            telemetry_report_json(jobs, simtime::us(50)));
}

// --- a small type-2 job for seam coverage --------------------------------

PI_CHANNEL* g_ch = nullptr;
std::atomic<int> g_value{0};

PI_SPE_PROGRAM(writes_one_int) {
  PI_Write(g_ch, "%d", 4242);
  return 0;
}

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

int telemetry_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spe = PI_CreateSPE(writes_one_int, PI_MAIN, 0);
  g_ch = PI_CreateChannel(spe, PI_MAIN);  // Table I type 2
  PI_StartAll();
  PI_RunSPE(spe, 0, nullptr);
  int v = 0;
  PI_Read(g_ch, "%d", &v);
  g_value.store(v);
  PI_StopMain(0);
  return 0;
}

TEST(TelemetryLayer, CapturedJobRecordsTheCoreSeamKinds) {
  ScopedTelemetryCapture capture;
  g_value.store(0);
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, telemetry_main);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(g_value.load(), 4242);

  const std::vector<ts::Series> series = capture.drain();
  ASSERT_FALSE(series.empty());
  std::uint64_t delivered = 0;
  std::uint64_t sent = 0;
  std::uint64_t mailbox = 0;
  std::uint64_t service_busy = 0;
  std::uint64_t pool = 0;
  for (const ts::Series& s : series) {
    std::uint64_t samples = 0;
    for (const auto& [win, cell] : s.windows) {
      (void)win;
      samples += cell.count;
    }
    switch (s.key.kind) {
      case ts::Kind::kDelivered:
        delivered += samples;
        EXPECT_EQ(s.key.route_type, 2);
        break;
      case ts::Kind::kSent: sent += samples; break;
      case ts::Kind::kMailboxDepth:
        mailbox += samples;
        EXPECT_EQ(s.key.entity.find("node0"), 0u)
            << "mailbox gauge must name its Co-Pilot: " << s.key.entity;
        break;
      case ts::Kind::kServiceBusy: service_busy += samples; break;
      case ts::Kind::kSpePoolBusy: pool += samples; break;
      default: break;
    }
  }
  EXPECT_EQ(delivered, 1u) << "one message end to end";
  EXPECT_EQ(sent, 1u);
  EXPECT_GE(mailbox, 1u) << "type 2 crosses the Co-Pilot ready queue";
  EXPECT_GE(service_busy, 1u);
  EXPECT_GE(pool, 2u) << "the SPE context spawns (1) and retires (0)";
}

TEST(TelemetryDeterminism, TwoSeededRunsSerializeByteIdentically) {
  auto one_run = [] {
    ScopedTelemetryCapture capture;
    cluster::Cluster machine = one_cell();
    const auto r = cellpilot::run(machine, telemetry_main);
    EXPECT_FALSE(r.aborted) << r.abort_reason;
    JobTelemetry jt;
    jt.job = 1;
    jt.series = capture.drain();
    return telemetry_report_json({jt}, ts::window());
  };
  const std::string first = one_run();
  const std::string second = one_run();
  EXPECT_NE(first.find("\"kind\": \"delivered\""), std::string::npos)
      << "capture saw no delivery rows: " << first;
  EXPECT_EQ(first, second);
}

// --- virtual-time neutrality ---------------------------------------------

TEST(TelemetryNeutrality, ArmingDoesNotPerturbVirtualTime) {
  benchkit::PingPongSpec spec;
  spec.type = cellpilot::ChannelType::kType2;
  spec.bytes = 32;
  spec.reps = 20;
  const simtime::CostModel cost = simtime::default_cost_model();
  const simtime::SimTime plain =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);
  simtime::SimTime armed = 0;
  {
    ScopedTelemetryCapture capture;
    armed = benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);
  }
  EXPECT_EQ(plain, armed)
      << "recording must read clocks the seams already hold, never move "
         "them";
}

// --- empty-env disarm baselines ------------------------------------------

// CELLPILOT_TELEMETRY="" (and its trace / metrics / flight-recorder
// siblings) must keep the feature disarmed: an empty value is a disarm
// baseline, not an instruction to open an unnamed file.  reset_for_tests
// re-reads the environment through the same guard the session constructor
// uses, so this exercises the arming decision itself.
class EmptyEnvBaselineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("CELLPILOT_TELEMETRY");
    ::unsetenv("CELLPILOT_TRACE");
    ::unsetenv("CELLPILOT_METRICS");
    ::unsetenv("CELLPILOT_FLIGHTREC");
    cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
    cellpilot::trace::TraceSession::global().reset_for_tests();
    cellpilot::metrics::MetricsSession::global().reset_for_tests();
    cellpilot::flightrec::FlightRecorder::global().reset_for_tests();
  }
};

TEST_F(EmptyEnvBaselineTest, EmptyValuesKeepEverySessionDisarmed) {
  ::setenv("CELLPILOT_TELEMETRY", "", 1);
  ::setenv("CELLPILOT_TRACE", "", 1);
  ::setenv("CELLPILOT_METRICS", "", 1);
  ::setenv("CELLPILOT_FLIGHTREC", "", 1);
  cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
  cellpilot::trace::TraceSession::global().reset_for_tests();
  cellpilot::metrics::MetricsSession::global().reset_for_tests();
  cellpilot::flightrec::FlightRecorder::global().reset_for_tests();
  EXPECT_FALSE(cellpilot::telemetry::TelemetrySession::global().armed());
  EXPECT_FALSE(cellpilot::trace::TraceSession::global().armed());
  EXPECT_FALSE(cellpilot::metrics::MetricsSession::global().armed());
  EXPECT_FALSE(cellpilot::flightrec::FlightRecorder::global().armed());
  EXPECT_FALSE(ts::armed()) << "no engine may be left armed either";
}

TEST_F(EmptyEnvBaselineTest, NonEmptyValuesStillArmAfterAReset) {
  ::setenv("CELLPILOT_TELEMETRY", "env_tel.json", 1);
  cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
  EXPECT_TRUE(cellpilot::telemetry::TelemetrySession::global().armed());
  EXPECT_EQ(cellpilot::telemetry::TelemetrySession::global().path(),
            "env_tel.json");
}

TEST_F(EmptyEnvBaselineTest, TelemetryWindowEnvParsesOrIsLoudlyIgnored) {
  const simtime::SimTime before = ts::window();
  // A positive microsecond count takes effect at session (re)construction.
  ::setenv("CELLPILOT_TELEMETRY_EVERY", "25", 1);
  cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
  EXPECT_EQ(ts::window(), simtime::us(25));
  // Garbage and non-positive values must leave the window alone.
  for (const char* bad : {"banana", "0", "-5", "10us"}) {
    ::setenv("CELLPILOT_TELEMETRY_EVERY", bad, 1);
    cellpilot::telemetry::TelemetrySession::global().reset_for_tests();
    EXPECT_EQ(ts::window(), simtime::us(25)) << "value: " << bad;
  }
  ::unsetenv("CELLPILOT_TELEMETRY_EVERY");
  ts::set_window(before);
}

}  // namespace
