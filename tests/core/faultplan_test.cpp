// Fault-plan tests: spec parsing, seed determinism, and — the property
// everything else in this repo leans on — that a disabled (or armed but
// rule-free) plan changes no virtual timestamp anywhere.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "benchkit/pingpong.hpp"
#include "core/faultplan.hpp"
#include "mpisim/reliable.hpp"
#include "simtime/cost_model.hpp"

namespace {

using cellpilot::faults::FaultPlan;
using cellpilot::faults::Kind;
using cellpilot::faults::Rule;

/// Every test leaves the plan as it found it (the CELLPILOT_FAULTS
/// baseline), so cases cannot leak injections into each other.
class FaultPlanTest : public ::testing::Test {
 protected:
  ~FaultPlanTest() override { FaultPlan::global().reset(); }
};

TEST_F(FaultPlanTest, ParsesAFullSpec) {
  FaultPlan& plan = FaultPlan::global();
  plan.configure(
      "seed=7;mbox_stall@node0.cell0.spe0:op=2,count=3,delay=600us;"
      "send_drop@3->5:op=1");
  EXPECT_TRUE(plan.armed());
  EXPECT_EQ(plan.seed(), 7u);
  const std::vector<Rule> rules = plan.rules();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].kind, Kind::kMboxStall);
  EXPECT_EQ(rules[0].site, "node0.cell0.spe0");
  EXPECT_EQ(rules[0].op, 2u);
  EXPECT_EQ(rules[0].count, 3u);
  EXPECT_EQ(rules[0].delay, simtime::us(600.0));
  EXPECT_EQ(rules[1].kind, Kind::kSendDrop);
  EXPECT_EQ(rules[1].site, "3->5");
}

TEST_F(FaultPlanTest, OnOffKeywordsAndRejectedSpecs) {
  FaultPlan& plan = FaultPlan::global();
  plan.configure("on");
  EXPECT_TRUE(plan.armed());
  EXPECT_TRUE(plan.rules().empty());
  plan.configure("off");
  EXPECT_FALSE(plan.armed());

  EXPECT_THROW(plan.configure("mbox_stall"), std::invalid_argument);
  EXPECT_THROW(plan.configure("mystery_kind@*"), std::invalid_argument);
  EXPECT_THROW(plan.configure("mbox_stall@spe:count=0"),
               std::invalid_argument);
  EXPECT_THROW(plan.configure("seed=banana"), std::invalid_argument);
  // A failed configure must not leave the machinery half-armed with the
  // previous rules gone.
  plan.configure("off");
  EXPECT_FALSE(plan.armed());
}

TEST_F(FaultPlanTest, ParsesMessageLevelAndCopilotKinds) {
  FaultPlan& plan = FaultPlan::global();
  plan.configure(
      "msg_drop@1->0:op=1;msg_corrupt@*:op=2;msg_dup@0->1;"
      "msg_reorder@*:count=4;copilot_crash@copilot0:op=1");
  const std::vector<Rule> rules = plan.rules();
  ASSERT_EQ(rules.size(), 5u);
  EXPECT_EQ(rules[0].kind, Kind::kMsgDrop);
  EXPECT_EQ(rules[1].kind, Kind::kMsgCorrupt);
  EXPECT_EQ(rules[2].kind, Kind::kMsgDup);
  EXPECT_EQ(rules[3].kind, Kind::kMsgReorder);
  EXPECT_EQ(rules[4].kind, Kind::kCopilotCrash);
  EXPECT_EQ(rules[4].site, "copilot0");
  EXPECT_EQ(rules[3].count, 4u);
}

TEST_F(FaultPlanTest, UnknownKindErrorListsTheValidKinds) {
  FaultPlan& plan = FaultPlan::global();
  try {
    plan.configure("msg_teleport@*");
    FAIL() << "unknown kind accepted";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("msg_teleport"), std::string::npos);
    EXPECT_NE(what.find("valid kinds:"), std::string::npos);
    EXPECT_NE(what.find("msg_drop"), std::string::npos);
    EXPECT_NE(what.find("copilot_crash"), std::string::npos);
  }
}

TEST_F(FaultPlanTest, MessageRulesArmTheReliableLayer) {
  FaultPlan& plan = FaultPlan::global();
  // Bare "on" and non-message rules keep the historical wire path.
  plan.configure("on");
  EXPECT_FALSE(mpisim::reliable::enabled());
  plan.configure("spe_crash@*:op=3");
  EXPECT_FALSE(mpisim::reliable::enabled());
  // Any message-level rule arms the sublayer; reset disarms it.
  plan.configure("msg_drop@*:op=2");
  EXPECT_TRUE(mpisim::reliable::enabled());
  plan.reset();
  EXPECT_FALSE(mpisim::reliable::enabled());
}

TEST_F(FaultPlanTest, CopilotCrashSiteMatchingAndOrdinals) {
  FaultPlan& plan = FaultPlan::global();
  plan.configure("copilot_crash@copilot1:op=1");
  // Node 0's Co-Pilot (canonical name node0.copilot) never matches.
  EXPECT_FALSE(plan.should_crash_copilot("node0.copilot", 0));
  // Node 1 matches through the copilotN alias — but only on its first
  // served request (op=1), exactly once (default count=1).
  EXPECT_TRUE(plan.should_crash_copilot("node1.copilot", 1));
  EXPECT_FALSE(plan.should_crash_copilot("node1.copilot", 1));

  plan.configure("copilot_crash@*:op=2");
  EXPECT_FALSE(plan.should_crash_copilot("node0.copilot", 0));  // op 1
  EXPECT_TRUE(plan.should_crash_copilot("node0.copilot", 0));   // op 2
  EXPECT_FALSE(plan.should_crash_copilot("node0.copilot", 0));  // op 3
}

TEST_F(FaultPlanTest, DerivedOpIsAPureFunctionOfSeedRuleAndSite) {
  FaultPlan& plan = FaultPlan::global();
  plan.configure("seed=42;spe_crash@*");
  const std::uint64_t first = plan.derived_op(0, "node0.cell0.spe0");
  EXPECT_EQ(plan.derived_op(0, "node0.cell0.spe0"), first);
  EXPECT_GE(first, 1u);
  EXPECT_LE(first, 16u);
  plan.configure("seed=43;spe_crash@*");
  // Different seed, (almost surely) different ordinal — and always
  // reproducibly so; equality here would make the test vacuous, so pin
  // the exact pair instead of inequality.
  const std::uint64_t again = plan.derived_op(0, "node0.cell0.spe0");
  plan.configure("seed=42;spe_crash@*");
  EXPECT_EQ(plan.derived_op(0, "node0.cell0.spe0"), first);
  plan.configure("seed=43;spe_crash@*");
  EXPECT_EQ(plan.derived_op(0, "node0.cell0.spe0"), again);
}

TEST_F(FaultPlanTest, DisabledAndRuleFreePlansLeaveVirtualTimeUntouched) {
  // The acceptance bar for the whole substrate: with no rules, every
  // virtual timestamp is identical to a plan-free run — the Table II
  // numbers cannot move.  Run the paper's own measurement with the plan
  // off, armed-but-empty, and off again.
  const simtime::CostModel cost;  // the calibrated defaults
  benchkit::PingPongSpec spec;
  spec.type = cellpilot::ChannelType::kType2;
  spec.bytes = 1600;
  spec.reps = 20;

  FaultPlan::global().configure("off");
  const simtime::SimTime off1 =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);
  FaultPlan::global().configure("on");
  const simtime::SimTime armed_empty =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);
  FaultPlan::global().configure("off");
  const simtime::SimTime off2 =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);

  EXPECT_EQ(off1, off2) << "pingpong itself is nondeterministic";
  EXPECT_EQ(off1, armed_empty)
      << "an armed, rule-free plan changed virtual time";
}

TEST_F(FaultPlanTest, InjectedStallIsDeterministicAndVisible) {
  const simtime::CostModel cost;
  benchkit::PingPongSpec spec;
  spec.type = cellpilot::ChannelType::kType2;
  spec.bytes = 1;
  spec.reps = 20;

  FaultPlan::global().configure("off");
  const simtime::SimTime clean =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);

  // A stall well under the supervision budget: it slows the run without
  // tripping the timeout machinery.
  const std::string stall = "mbox_stall@*:op=5,count=2,delay=40us";
  FaultPlan::global().configure(stall);
  const simtime::SimTime faulty1 =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);
  FaultPlan::global().configure(stall);
  const simtime::SimTime faulty2 =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);

  EXPECT_EQ(faulty1, faulty2) << "same plan, same seed => same timestamps";
  EXPECT_GT(faulty1, clean) << "the stall must actually cost virtual time";
}

}  // namespace
