// trace_layer_test.cpp — the CellPilot vocabulary over the trace engine:
// always-on channel counters, tag attribution, the Chrome JSON serializer,
// PI_GetChannelStats, and end-to-end determinism of a captured job.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/cellpilot.hpp"
#include "core/trace.hpp"
#include "mpisim/types.hpp"
#include "pilot/errors.hpp"
#include "pilot/tables.hpp"
#include "simtime/sim_time.hpp"
#include "simtime/tracebuf.hpp"

namespace {

namespace tb = simtime::tracebuf;
using cellpilot::trace::channel_of_tag;
using cellpilot::trace::ChannelCounters;
using cellpilot::trace::ChannelSummary;
using cellpilot::trace::chrome_trace_json;
using cellpilot::trace::JobBatch;
using cellpilot::trace::ScopedTraceCapture;
using simtime::us;

// --- tag attribution -----------------------------------------------------

TEST(ChannelOfTag, MapsChannelTagsAndRejectsEverythingElse) {
  EXPECT_EQ(channel_of_tag(pilot::kChannelTagBase), 0);
  EXPECT_EQ(channel_of_tag(pilot::kChannelTagBase + 7), 7);
  EXPECT_EQ(channel_of_tag(pilot::kChannelTagBase - 1), -1)
      << "user tags below the base are not channels";
  EXPECT_EQ(channel_of_tag(0), -1);
  EXPECT_EQ(channel_of_tag(-3), -1);
  EXPECT_EQ(channel_of_tag(mpisim::kReservedTagBase), -1)
      << "control traffic is never attributed to a channel";
  EXPECT_EQ(channel_of_tag(mpisim::kReservedTagBase - 1),
            static_cast<int>(mpisim::kReservedTagBase - 1 -
                             pilot::kChannelTagBase));
}

// --- always-on counters --------------------------------------------------

TEST(ChannelCountersTest, ResetSizesTheTableAndZeroesTotals) {
  ChannelCounters& cc = ChannelCounters::global();
  cc.reset(2);
  EXPECT_EQ(cc.size(), 2u);
  cc.add_message(1, 64);
  cc.reset(3);
  EXPECT_EQ(cc.size(), 3u);
  EXPECT_EQ(cc.snapshot(1).messages, 0u) << "reset starts a fresh epoch";
}

TEST(ChannelCountersTest, AccumulatesPerChannel) {
  ChannelCounters& cc = ChannelCounters::global();
  cc.reset(2);
  cc.add_message(0, 16);
  cc.add_message(0, 48);
  cc.add_copilot_hop(0);
  cc.add_retry(1);
  cc.add_timeout(1);
  cc.add_fault(1);

  const auto s0 = cc.snapshot(0);
  EXPECT_EQ(s0.messages, 2u);
  EXPECT_EQ(s0.payload_bytes, 64u);
  EXPECT_EQ(s0.copilot_hops, 1u);
  EXPECT_EQ(s0.retries, 0u);

  const auto s1 = cc.snapshot(1);
  EXPECT_EQ(s1.messages, 0u);
  EXPECT_EQ(s1.retries, 1u);
  EXPECT_EQ(s1.timeouts, 1u);
  EXPECT_EQ(s1.faults, 1u);
}

TEST(ChannelCountersTest, OutOfRangeChannelsAreIgnoredNotFatal) {
  ChannelCounters& cc = ChannelCounters::global();
  cc.reset(1);
  cc.add_message(-1, 8);
  cc.add_message(1, 8);
  cc.add_copilot_hop(99);
  EXPECT_EQ(cc.snapshot(0).messages, 0u);
  EXPECT_EQ(cc.snapshot(-1).messages, 0u) << "snapshot of a bad id is zeroes";
  EXPECT_EQ(cc.snapshot(99).messages, 0u);
}

// --- Chrome JSON serializer ----------------------------------------------

JobBatch sample_batch() {
  JobBatch b;
  b.job = 1;
  tb::Event e;
  e.begin = us(1.5);
  e.end = us(3.5);
  e.bytes = 400;
  e.aux = pilot::kChannelTagBase;
  e.channel = 0;
  e.route_type = 4;
  e.kind = tb::Kind::kCopilotPair;
  std::snprintf(e.entity, sizeof e.entity, "%s", "node0.copilot");
  b.events.push_back(e);

  ChannelSummary ch;
  ch.channel = 0;
  ch.route_type = 4;
  ch.name = "P1->P2";
  ch.stats.messages = 1;
  ch.stats.payload_bytes = 400;
  ch.stats.copilot_hops = 1;
  b.channels.push_back(ch);
  return b;
}

TEST(ChromeTraceJson, EmitsOneEventPerLineWithVirtualMicroseconds) {
  const std::string json = chrome_trace_json({sample_batch()});
  // One complete event, pid = job, µs with exactly three decimals.
  EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":1,\"tid\":1,"
                      "\"ts\":1.500,\"dur\":2.000,"
                      "\"name\":\"copilot_pair\""),
            std::string::npos)
      << json;
  // Thread-name metadata for the recording entity.
  EXPECT_NE(json.find("\"name\":\"thread_name\",\"args\":"
                      "{\"name\":\"node0.copilot\"}"),
            std::string::npos)
      << json;
  // Per-channel stats block.
  EXPECT_NE(json.find("\"channelStats\":["), std::string::npos);
  EXPECT_NE(json.find("\"route\":4,\"messages\":1,\"payloadBytes\":400,"
                      "\"copilotHops\":1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"generator\":\"cellpilot\""), std::string::npos);
}

TEST(ChromeTraceJson, SerializationIsAPureFunctionOfTheBatches) {
  const std::string a = chrome_trace_json({sample_batch()});
  const std::string b = chrome_trace_json({sample_batch()});
  EXPECT_EQ(a, b);
}

TEST(ChromeTraceJson, EscapesQuotesAndControlCharactersInNames) {
  JobBatch b = sample_batch();
  b.channels[0].name = "a\"b\\c\n";
  const std::string json = chrome_trace_json({b});
  EXPECT_NE(json.find("a\\\"b\\\\c\\u000a"), std::string::npos) << json;
}

// --- end-to-end: captured job, stats API, determinism --------------------

PI_CHANNEL* g_ch = nullptr;
std::atomic<int> g_value{0};

PI_SPE_PROGRAM(writes_one_int) {
  PI_Write(g_ch, "%d", 4242);
  return 0;
}

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

int stats_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spe = PI_CreateSPE(writes_one_int, PI_MAIN, 0);
  g_ch = PI_CreateChannel(spe, PI_MAIN);  // Table I type 2
  PI_StartAll();
  PI_RunSPE(spe, 0, nullptr);
  int v = 0;
  PI_Read(g_ch, "%d", &v);
  g_value.store(v);
  PI_StopMain(0);

  // Totals are complete at quiescence — the SPE-side and Co-Pilot-side
  // increments land on their own threads, so PI_MAIN harvests after
  // PI_StopMain (the documented contract).
  PI_CHANNEL_STATS stats{};
  EXPECT_EQ(PI_GetChannelStats(g_ch, &stats), 0);
  EXPECT_EQ(stats.channel, 0);
  EXPECT_EQ(stats.route_type, 2);
  EXPECT_EQ(stats.messages, 1u);
  EXPECT_EQ(stats.payload_bytes, sizeof(int));
  EXPECT_GE(stats.copilot_hops, 1u) << "type 2 crosses the Co-Pilot";
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  EXPECT_EQ(stats.faults, 0u);

  EXPECT_THROW(PI_GetChannelStats(nullptr, &stats), pilot::PilotError);
  EXPECT_THROW(PI_GetChannelStats(g_ch, nullptr), pilot::PilotError);
  return 0;
}

TEST(ChannelStatsApi, ReportsWriterTotalsAndCopilotHops) {
  g_value.store(0);
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, stats_main);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(g_value.load(), 4242);
}

/// Runs the tiny type-2 job under a capture and serializes what happened.
/// Channel attribution and serialization both run, so equality of the
/// returned strings is exactly the byte-identical-trace guarantee.
std::string traced_run() {
  ScopedTraceCapture capture;
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, stats_main);
  EXPECT_FALSE(r.aborted) << r.abort_reason;
  JobBatch batch;
  batch.job = 1;
  batch.events = capture.drain();
  return chrome_trace_json({batch});
}

TEST(TraceDeterminism, TwoSeededRunsSerializeByteIdentically) {
  const std::string first = traced_run();
  const std::string second = traced_run();
  EXPECT_NE(first.find("\"ph\":\"X\""), std::string::npos)
      << "capture saw no events";
  EXPECT_EQ(first, second);
}

TEST(TraceDeterminism, CapturedJobRecordsTheExpectedLegKinds) {
  ScopedTraceCapture capture;
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, stats_main);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  const auto events = capture.drain();
  ASSERT_FALSE(events.empty());

  int spe_writes = 0;
  int copilot_relays = 0;
  int rank_reads = 0;
  int mpi_on_channel = 0;
  for (const auto& e : events) {
    if (e.kind == tb::Kind::kSpeWrite && e.channel == 0) ++spe_writes;
    if (e.kind == tb::Kind::kCopilotRelay && e.channel == 0) {
      ++copilot_relays;
    }
    if (e.kind == tb::Kind::kPilotRead && e.channel == 0) ++rank_reads;
    if (e.kind == tb::Kind::kMpiSend && e.channel == 0) ++mpi_on_channel;
  }
  EXPECT_EQ(spe_writes, 1);
  EXPECT_EQ(copilot_relays, 1) << "type 2 is one Co-Pilot relay leg";
  EXPECT_EQ(rank_reads, 1);
  EXPECT_GE(mpi_on_channel, 1)
      << "the relayed frame crosses MiniMPI with the channel's tag";
}

}  // namespace
