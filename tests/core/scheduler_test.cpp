// Tests for the Co-Pilot's conservative virtual-time event ordering: with
// a serial Co-Pilot, concurrent SPE workers must (a) produce bit-identical
// virtual times run after run, regardless of host scheduling, and (b)
// genuinely overlap their compute phases.
#include <gtest/gtest.h>

#include <array>
#include <atomic>

#include "cellsim/spu.hpp"
#include "core/cellpilot.hpp"
#include "pilot/context.hpp"

namespace {

constexpr int kStrips = 8;
constexpr simtime::SimTime kComputePerStrip = simtime::us(400);

int g_workers = 1;
PI_CHANNEL* g_task[4];
PI_CHANNEL* g_sum[4];
std::atomic<simtime::SimTime> g_elapsed{0};

PI_SPE_PROGRAM(sched_worker) {
  const int id = arg1;
  for (;;) {
    double lo = 0, hi = 0;
    PI_Read(g_task[id], "%lf %lf", &lo, &hi);
    if (hi < lo) return 0;
    cellsim::spu::self().clock().advance(kComputePerStrip);
    PI_Write(g_sum[id], "%lf", lo + hi);
  }
}

int farm_main(int argc, char* argv[]) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spes[4];
  for (int w = 0; w < g_workers; ++w) {
    spes[w] = PI_CreateSPE(sched_worker, PI_MAIN, w);
    g_task[w] = PI_CreateChannel(PI_MAIN, spes[w]);
    g_sum[w] = PI_CreateChannel(spes[w], PI_MAIN);
  }
  PI_StartAll();
  for (int w = 0; w < g_workers; ++w) PI_RunSPE(spes[w], w, nullptr);

  simtime::VirtualClock& clock = pilot::context().mpi().clock();
  const simtime::SimTime start = clock.now();
  int dealt = 0, busy = 0;
  std::array<int, 4> outstanding{};
  while (dealt < kStrips || busy > 0) {
    for (int w = 0; w < g_workers; ++w) {
      auto& flag = outstanding[static_cast<std::size_t>(w)];
      if (flag == 0 && dealt < kStrips) {
        PI_Write(g_task[w], "%lf %lf", dealt * 1.0, dealt + 1.0);
        ++dealt;
        flag = 1;
        ++busy;
      } else if (flag == 1) {
        double part = 0;
        PI_Read(g_sum[w], "%lf", &part);
        flag = 0;
        --busy;
      }
    }
  }
  g_elapsed.store(clock.now() - start);
  for (int w = 0; w < g_workers; ++w) {
    PI_Write(g_task[w], "%lf %lf", 1.0, 0.0);
  }
  PI_StopMain(0);
  return 0;
}

simtime::SimTime run_farm(int workers) {
  g_workers = workers;
  g_elapsed.store(0);
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  const auto result = cellpilot::run(machine, farm_main);
  EXPECT_FALSE(result.aborted) << result.abort_reason;
  return g_elapsed.load();
}

TEST(ConservativeScheduler, ConcurrentWorkersAreDeterministic) {
  // The headline property: identical virtual makespans across repeated
  // runs, even though host threads interleave differently every time.
  const simtime::SimTime first = run_farm(2);
  for (int attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(run_farm(2), first) << "attempt " << attempt;
  }
}

TEST(ConservativeScheduler, TwoWorkersOverlapCompute) {
  // 8 strips x 400us compute: one worker pays all compute serially; two
  // workers must overlap a substantial part of it despite the serial
  // Co-Pilot handling every request.
  const simtime::SimTime one = run_farm(1);
  const simtime::SimTime two = run_farm(2);
  EXPECT_LT(two, one * 8 / 10);  // at least 1.25x speedup
  EXPECT_GT(two, one / 2);       // but not superlinear: Co-Pilot is serial
}

TEST(ConservativeScheduler, FourWorkersKeepImproving) {
  const simtime::SimTime two = run_farm(2);
  const simtime::SimTime four = run_farm(4);
  EXPECT_LT(four, two);
}

TEST(ConservativeScheduler, PingPongStaysDeterministicWithIdlePeers) {
  // Two-node machine: the initiating node's Co-Pilot must not stall
  // behind the remote node's idle Co-Pilot (published-bound protocol).
  g_workers = 1;
  g_elapsed.store(0);
  cluster::Cluster machine(cluster::ClusterConfig::two_cells());
  const auto result = cellpilot::run(machine, farm_main);
  ASSERT_FALSE(result.aborted) << result.abort_reason;
  const simtime::SimTime first = g_elapsed.load();

  g_elapsed.store(0);
  cluster::Cluster machine2(cluster::ClusterConfig::two_cells());
  const auto result2 = cellpilot::run(machine2, farm_main);
  ASSERT_FALSE(result2.aborted) << result2.abort_reason;
  EXPECT_EQ(g_elapsed.load(), first);
}

}  // namespace
