// metrics_layer_test.cpp — the CellPilot vocabulary over the histogram
// engine: the report serializer, the scoped capture harness, end-to-end
// seam coverage on a type-2 job, the PI_GetMetricsSnapshot harvest
// contract (including PI_ERR_PHASE before PI_StartAll), determinism of
// the report bytes, and virtual-time neutrality of arming.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "benchkit/pingpong.hpp"
#include "core/cellpilot.hpp"
#include "core/metrics.hpp"
#include "pilot/errors.hpp"
#include "simtime/metrics.hpp"

namespace {

namespace sm = simtime::metrics;
using cellpilot::metrics::JobReport;
using cellpilot::metrics::LatencyLedger;
using cellpilot::metrics::metrics_report_json;
using cellpilot::metrics::ScopedMetricsCapture;

// --- report serializer ---------------------------------------------------

JobReport sample_report() {
  JobReport r;
  r.job = 1;
  sm::Series s;
  s.key.kind = sm::Kind::kMsgLatency;
  s.key.route_type = 2;
  s.key.channel = 0;
  s.key.entity = "rank0";
  s.hist.add(1000);
  s.hist.add(3000);
  r.series.push_back(s);
  return r;
}

TEST(MetricsReportJson, EmitsSeriesAndRouteRollupLines) {
  const std::string json = metrics_report_json({sample_report()});
  EXPECT_NE(json.find("\"generator\":\"cellpilot-metrics\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"unit\":\"virtual_ns\""), std::string::npos);
  EXPECT_NE(json.find("{\"agg\":\"series\",\"job\":1,"
                      "\"kind\":\"msg_latency\",\"route\":2,\"channel\":0,"
                      "\"entity\":\"rank0\",\"count\":2,\"sumNs\":4000,"
                      "\"minNs\":1000"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"agg\":\"route\",\"job\":1,"
                      "\"kind\":\"msg_latency\",\"route\":2,\"count\":2,"
                      "\"sumNs\":4000"),
            std::string::npos)
      << json;
}

TEST(MetricsReportJson, SerializationIsAPureFunctionOfTheReports) {
  EXPECT_EQ(metrics_report_json({sample_report()}),
            metrics_report_json({sample_report()}));
}

// --- latency ledger ------------------------------------------------------

TEST(LatencyLedgerTest, FifoPerChannelAndRangeChecked) {
  LatencyLedger& ledger = LatencyLedger::global();
  ledger.reset(2);
  ledger.push(0, 100);
  ledger.push(0, 200);
  ledger.push(1, 300);
  ledger.push(7, 400);  // out of range: ignored
  simtime::SimTime got = 0;
  EXPECT_TRUE(ledger.pop(0, &got));
  EXPECT_EQ(got, 100);
  EXPECT_TRUE(ledger.pop(0, &got));
  EXPECT_EQ(got, 200);
  EXPECT_FALSE(ledger.pop(0, &got)) << "FIFO exhausted";
  EXPECT_FALSE(ledger.pop(7, &got)) << "out-of-range channel";
  EXPECT_TRUE(ledger.pop(1, &got));
  EXPECT_EQ(got, 300);
  ledger.reset(1);
  EXPECT_FALSE(ledger.pop(1, &got)) << "reset starts a fresh epoch";
}

// --- end-to-end: a type-2 job under a scoped capture ---------------------

PI_CHANNEL* g_ch = nullptr;
std::atomic<int> g_value{0};

PI_SPE_PROGRAM(writes_one_int) {
  PI_Write(g_ch, "%d", 4242);
  return 0;
}

cluster::Cluster one_cell() {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  return cluster::Cluster(std::move(config));
}

int metrics_main(int argc, char** argv) {
  PI_Configure(&argc, &argv);
  PI_PROCESS* spe = PI_CreateSPE(writes_one_int, PI_MAIN, 0);
  g_ch = PI_CreateChannel(spe, PI_MAIN);  // Table I type 2

  // Harvest-contract negative tests: before PI_StartAll neither stats API
  // has an epoch to report, and both say so with PI_ERR_PHASE rather
  // than a throw (null arguments are still usage errors).
  PI_CHANNEL_STATS cstats{};
  PI_METRICS_SNAPSHOT snap{};
  EXPECT_EQ(PI_GetChannelStats(g_ch, &cstats), PI_ERR_PHASE);
  EXPECT_EQ(PI_GetMetricsSnapshot(&snap), PI_ERR_PHASE);
  EXPECT_THROW(PI_GetMetricsSnapshot(nullptr), pilot::PilotError);

  PI_StartAll();
  PI_RunSPE(spe, 0, nullptr);
  int v = 0;
  PI_Read(g_ch, "%d", &v);
  g_value.store(v);
  PI_StopMain(0);

  // After PI_StopMain the job is quiesced: the snapshot covers the one
  // message end to end.  Slot 0 aggregates all routes, slot 2 is Table I
  // type 2.
  EXPECT_EQ(PI_GetMetricsSnapshot(&snap), 0);
  EXPECT_EQ(snap.msg_latency[2].count, 1u);
  EXPECT_EQ(snap.msg_latency[0].count, 1u);
  EXPECT_EQ(snap.read_block[2].count, 1u);
  EXPECT_EQ(snap.msg_latency[1].count, 0u) << "no type-1 traffic ran";
  EXPECT_GT(snap.msg_latency[2].sum_ns, 0u);
  EXPECT_GE(snap.msg_latency[2].max_ns, snap.msg_latency[2].min_ns);
  EXPECT_GE(snap.msg_latency[2].p50_ns, snap.msg_latency[2].min_ns);
  EXPECT_LE(snap.msg_latency[2].p99_ns, snap.msg_latency[2].max_ns);
  EXPECT_GE(snap.msg_latency[2].min_ns, snap.read_block[2].min_ns)
      << "end-to-end latency includes the read's blocking time";
  return 0;
}

TEST(MetricsLayer, CapturedJobRecordsEverySeamKind) {
  ScopedMetricsCapture capture;
  g_value.store(0);
  cluster::Cluster machine = one_cell();
  const auto r = cellpilot::run(machine, metrics_main);
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  ASSERT_TRUE(r.errors.empty()) << r.errors.front();
  EXPECT_EQ(g_value.load(), 4242);

  const auto series = capture.drain();
  ASSERT_FALSE(series.empty());
  std::uint64_t latency = 0;
  std::uint64_t block = 0;
  std::uint64_t queue_wait = 0;
  std::uint64_t service = 0;
  std::uint64_t mbox = 0;
  for (const auto& s : series) {
    switch (s.key.kind) {
      case sm::Kind::kMsgLatency:
        latency += s.hist.count();
        EXPECT_EQ(s.key.route_type, 2);
        EXPECT_EQ(s.key.channel, 0);
        break;
      case sm::Kind::kReadBlock: block += s.hist.count(); break;
      case sm::Kind::kCopilotQueueWait: queue_wait += s.hist.count(); break;
      case sm::Kind::kCopilotService: service += s.hist.count(); break;
      case sm::Kind::kMboxWait: mbox += s.hist.count(); break;
      case sm::Kind::kRetransmitDelay: break;  // clean run: none expected
    }
  }
  EXPECT_EQ(latency, 1u) << "one message end to end";
  EXPECT_EQ(block, 1u) << "one PI_Read";
  EXPECT_GE(queue_wait, 1u) << "type 2 crosses the Co-Pilot";
  EXPECT_EQ(queue_wait, service)
      << "every served request has both a queue-wait and a service sample";
  EXPECT_GE(mbox, 1u) << "the SPE write talks over its mailbox";
}

TEST(MetricsDeterminism, TwoSeededRunsSerializeByteIdentically) {
  auto one_run = [] {
    ScopedMetricsCapture capture;
    cluster::Cluster machine = one_cell();
    const auto r = cellpilot::run(machine, metrics_main);
    EXPECT_FALSE(r.aborted) << r.abort_reason;
    JobReport report;
    report.job = 1;
    report.series = capture.drain();
    return metrics_report_json({report});
  };
  const std::string first = one_run();
  const std::string second = one_run();
  EXPECT_NE(first.find("\"agg\":\"series\""), std::string::npos)
      << "capture saw no series";
  EXPECT_EQ(first, second);
}

// --- virtual-time neutrality ---------------------------------------------

TEST(MetricsNeutrality, ArmingDoesNotPerturbVirtualTime) {
  benchkit::PingPongSpec spec;
  spec.type = cellpilot::ChannelType::kType2;
  spec.bytes = 32;
  spec.reps = 20;
  const simtime::CostModel cost = simtime::default_cost_model();
  const simtime::SimTime plain =
      benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);
  simtime::SimTime armed = 0;
  {
    ScopedMetricsCapture capture;
    armed = benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost);
  }
  EXPECT_EQ(plain, armed)
      << "recording must read clocks the seams already hold, never move "
         "them";
}

TEST(MetricsNeutrality, PingPongStatsMeanMatchesPlainPingPong) {
  benchkit::PingPongSpec spec;
  spec.type = cellpilot::ChannelType::kType4;
  spec.bytes = 64;
  spec.reps = 10;
  const simtime::CostModel cost = simtime::default_cost_model();
  const benchkit::PingPongStats stats =
      benchkit::pingpong_stats(spec, benchkit::Method::kCellPilot, cost);
  EXPECT_EQ(stats.one_way,
            benchkit::pingpong(spec, benchkit::Method::kCellPilot, cost))
      << "per-rep sampling is clock reads only";
  EXPECT_LE(stats.p50, stats.p99);
  EXPECT_GT(stats.p50, 0);
}

}  // namespace
