// Protocol-structure tests: the event trace must show exactly the hops the
// paper's §IV design prescribes for each channel type — no more, no fewer.
#include <gtest/gtest.h>

#include <string>

#include "core/cellpilot.hpp"
#include "simtime/trace.hpp"

namespace {

PI_CHANNEL* g_ch = nullptr;
PI_PROCESS* g_remote_spe = nullptr;
int g_tag = 0;  // captured during the run: channels die with the app

/// Counts trace events of `kind` from entities containing `who` whose
/// detail contains `needle`.
std::size_t count_events(simtime::TraceKind kind, const std::string& who,
                         const std::string& needle) {
  std::size_t n = 0;
  for (const auto& e : simtime::Trace::global().events()) {
    if (e.kind == kind && e.entity.find(who) != std::string::npos &&
        e.detail.find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

PI_SPE_PROGRAM(ts_reader) {
  int v = 0;
  PI_Read(g_ch, "%d", &v);
  return 0;
}

TEST(TraceStructure, Type2WriteIsOneLocalMpiMessageAndOneRequest) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  simtime::ScopedTrace trace;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(ts_reader, PI_MAIN, 0);
    g_ch = PI_CreateChannel(PI_MAIN, spe);
    g_tag = g_ch->tag();
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_Write(g_ch, "%d", 7);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  const std::string tag = "tag=" + std::to_string(g_tag);
  // Exactly one data message, from the writing rank to the Co-Pilot.
  EXPECT_EQ(count_events(simtime::TraceKind::kMpiSend, "rank0", tag), 1u);
  EXPECT_EQ(count_events(simtime::TraceKind::kMpiSend, "copilot", tag), 0u);
  // Exactly one SPE request serviced (the read).
  EXPECT_EQ(count_events(simtime::TraceKind::kCopilotService, "copilot",
                         "read ch="),
            1u);
  // Nothing is a type-4 local copy.
  EXPECT_EQ(simtime::Trace::global().count(simtime::TraceKind::kMappedCopy),
            0u);
}

PI_SPE_PROGRAM(ts_writer) {
  PI_Write(g_ch, "%d", 9);
  return 0;
}

int ts_parent(int /*index*/, void* /*arg*/) {
  PI_RunSPE(g_remote_spe, 0, nullptr);
  return 0;
}

TEST(TraceStructure, Type5CrossesTheNetworkExactlyOnceViaTwoCopilots) {
  cluster::Cluster machine(cluster::ClusterConfig::two_cells());
  simtime::ScopedTrace trace;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* parent = PI_CreateProcess(ts_parent, 0, nullptr);
    PI_PROCESS* writer = PI_CreateSPE(ts_writer, PI_MAIN, 0);
    g_remote_spe = PI_CreateSPE(ts_reader, parent, 0);
    g_ch = PI_CreateChannel(writer, g_remote_spe);
    g_tag = g_ch->tag();
    PI_StartAll();
    PI_RunSPE(writer, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  const std::string tag = "tag=" + std::to_string(g_tag);
  // One relay: writer's Co-Pilot (node0) -> reader's Co-Pilot (node1).
  EXPECT_EQ(count_events(simtime::TraceKind::kMpiSend, "node0.copilot", tag),
            1u);
  EXPECT_EQ(count_events(simtime::TraceKind::kMpiSend, "node1.copilot", tag),
            0u);
  EXPECT_EQ(count_events(simtime::TraceKind::kMpiSend, "rank", tag), 0u);
  // One write request at node0, one read request at node1.
  EXPECT_EQ(count_events(simtime::TraceKind::kCopilotService, "node0",
                         "write ch="),
            1u);
  EXPECT_EQ(count_events(simtime::TraceKind::kCopilotService, "node1",
                         "read ch="),
            1u);
}

PI_SPE_PROGRAM(ts_pair_writer) {
  PI_Write(g_ch, "%d", 3);
  return 0;
}

TEST(TraceStructure, Type4NeverTouchesMpiDataPaths) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  simtime::ScopedTrace trace;
  PI_PROCESS* reader_proc = nullptr;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* writer = PI_CreateSPE(ts_pair_writer, PI_MAIN, 0);
    reader_proc = PI_CreateSPE(ts_reader, PI_MAIN, 1);
    g_ch = PI_CreateChannel(writer, reader_proc);
    g_tag = g_ch->tag();
    PI_StartAll();
    PI_RunSPE(writer, 0, nullptr);
    PI_RunSPE(reader_proc, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  const std::string tag = "tag=" + std::to_string(g_tag);
  // No MPI message ever carries the channel's data...
  EXPECT_EQ(count_events(simtime::TraceKind::kMpiSend, "", tag), 0u);
  // ...exactly one local-store to local-store copy does.
  EXPECT_EQ(simtime::Trace::global().count(simtime::TraceKind::kMappedCopy),
            1u);
  // Both requests serviced by the single Co-Pilot.
  EXPECT_EQ(count_events(simtime::TraceKind::kCopilotService, "copilot", ""),
            2u);
}

}  // namespace
