// Tests for the CML-shaped library (the paper's §II.D comparison system):
// rank-addressed send/recv among SPE ranks and the hierarchical
// collectives, across one and several Cell nodes.
#include "cmlsim/cml.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

namespace {

cml::JobConfig small_job(int nodes, unsigned spes) {
  cml::JobConfig config;
  config.nodes = nodes;
  config.spes_per_node = spes;
  return config;
}

TEST(Cml, BadConfigurationsAreRejected) {
  const auto r1 = cml::run(small_job(0, 4), [](int, int) { return 0; });
  EXPECT_TRUE(r1.failed);
  const auto r2 = cml::run(small_job(1, 0), [](int, int) { return 0; });
  EXPECT_TRUE(r2.failed);
  const auto r3 = cml::run(small_job(1, 17), [](int, int) { return 0; });
  EXPECT_TRUE(r3.failed);
}

TEST(Cml, RanksAndSizeAreVisible) {
  std::atomic<int> sum{0};
  const auto r = cml::run(small_job(2, 3), [&](int rank, int size) {
    EXPECT_EQ(size, 6);
    EXPECT_EQ(cml::cml_rank(), rank);
    EXPECT_EQ(cml::cml_size(), size);
    sum.fetch_add(rank);
    return 0;
  });
  ASSERT_FALSE(r.failed) << r.error;
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3 + 4 + 5);
}

TEST(Cml, IntraNodeSendRecv) {
  std::atomic<int> got{0};
  const auto r = cml::run(small_job(1, 2), [&](int rank, int) {
    if (rank == 0) {
      const int v = 777;
      cml::cml_send(&v, sizeof v, 1);
    } else {
      int v = 0;
      cml::cml_recv(&v, sizeof v, 0);
      got.store(v);
    }
    return 0;
  });
  ASSERT_FALSE(r.failed) << r.error;
  EXPECT_EQ(got.load(), 777);
}

TEST(Cml, InterNodeSendRecvCrossesDaemons) {
  std::atomic<long long> got{0};
  const auto r = cml::run(small_job(2, 2), [&](int rank, int) {
    // rank 0 lives on node 0, rank 2 on node 1.
    if (rank == 0) {
      const long long v = 1234567890123LL;
      cml::cml_send(&v, sizeof v, 2);
    } else if (rank == 2) {
      long long v = 0;
      cml::cml_recv(&v, sizeof v, 0);
      got.store(v);
    }
    return 0;
  });
  ASSERT_FALSE(r.failed) << r.error;
  EXPECT_EQ(got.load(), 1234567890123LL);
}

TEST(Cml, SizeMismatchFailsBothSides) {
  const auto r = cml::run(small_job(1, 2), [&](int rank, int) {
    if (rank == 0) {
      const int v = 1;
      cml::cml_send(&v, sizeof v, 1);
    } else {
      double v = 0;
      cml::cml_recv(&v, sizeof v, 0);  // 8 bytes vs 4: must fail
    }
    return 0;
  });
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.error.find("status"), std::string::npos);
}

TEST(Cml, SelfAndOutOfRangePeersAreRejected) {
  const auto r = cml::run(small_job(1, 2), [&](int rank, int) {
    if (rank == 0) {
      int v = 0;
      cml::cml_send(&v, sizeof v, 0);  // self
    }
    return 0;
  });
  EXPECT_TRUE(r.failed);
}

class CmlBcast
    : public ::testing::TestWithParam<std::tuple<int, unsigned, int>> {};

TEST_P(CmlBcast, EveryRankReceivesTheRootsPayload) {
  const auto [nodes, spes, root] = GetParam();
  const int size = nodes * static_cast<int>(spes);
  std::vector<std::atomic<double>> seen(static_cast<std::size_t>(size));
  for (auto& s : seen) s.store(0);
  const auto r = cml::run(small_job(nodes, spes), [&](int rank, int) {
    double payload = rank == root ? 42.5 : -1.0;
    cml::cml_bcast(&payload, sizeof payload, root);
    seen[static_cast<std::size_t>(rank)].store(payload);
    return 0;
  });
  ASSERT_FALSE(r.failed) << r.error;
  for (int i = 0; i < size; ++i) {
    EXPECT_DOUBLE_EQ(seen[static_cast<std::size_t>(i)].load(), 42.5)
        << "rank " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CmlBcast,
    ::testing::Values(std::make_tuple(1, 4u, 0),
                      std::make_tuple(2, 2u, 0),
                      std::make_tuple(2, 3u, 4),   // non-representative root
                      std::make_tuple(3, 2u, 3)));

class CmlReduce
    : public ::testing::TestWithParam<std::tuple<int, unsigned, int>> {};

TEST_P(CmlReduce, SumsEveryContributionExactlyOnce) {
  const auto [nodes, spes, root] = GetParam();
  const int size = nodes * static_cast<int>(spes);
  std::atomic<double> total{-1};
  const auto r = cml::run(small_job(nodes, spes), [&](int rank, int) {
    const double contrib[2] = {static_cast<double>(rank), 1.0};
    double out[2] = {};
    cml::cml_reduce_sum(contrib, out, 2, root);
    if (rank == root) {
      EXPECT_DOUBLE_EQ(out[1], size);
      total.store(out[0]);
    }
    return 0;
  });
  ASSERT_FALSE(r.failed) << r.error;
  EXPECT_DOUBLE_EQ(total.load(), size * (size - 1) / 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CmlReduce,
    ::testing::Values(std::make_tuple(1, 4u, 0),
                      std::make_tuple(2, 2u, 1),
                      std::make_tuple(2, 4u, 5),
                      std::make_tuple(3, 2u, 0)));

TEST(Cml, AllreduceGivesEveryRankTheSum) {
  constexpr int kNodes = 2;
  constexpr unsigned kSpes = 3;
  const int size = kNodes * static_cast<int>(kSpes);
  std::vector<std::atomic<double>> results(static_cast<std::size_t>(size));
  const auto r = cml::run(small_job(kNodes, kSpes), [&](int rank, int) {
    const double v = rank + 1.0;
    double out = 0;
    cml::cml_allreduce_sum(&v, &out, 1);
    results[static_cast<std::size_t>(rank)].store(out);
    return 0;
  });
  ASSERT_FALSE(r.failed) << r.error;
  const double expect = size * (size + 1) / 2.0;
  for (int i = 0; i < size; ++i) {
    EXPECT_DOUBLE_EQ(results[static_cast<std::size_t>(i)].load(), expect);
  }
}

TEST(Cml, SpesAreRanksButPpesAreNot) {
  // The paper's key contrast: CML gives ranks to SPEs only.  A 2-node,
  // 8-SPE-per-node job has exactly 16 ranks — and the PPE daemons are
  // invisible to the application.
  std::atomic<int> max_rank{-1};
  const auto r = cml::run(small_job(2, 8), [&](int rank, int size) {
    EXPECT_EQ(size, 16);
    int cur = max_rank.load();
    while (rank > cur && !max_rank.compare_exchange_weak(cur, rank)) {
    }
    return 0;
  });
  ASSERT_FALSE(r.failed) << r.error;
  EXPECT_EQ(max_rank.load(), 15);
}

}  // namespace
