// arrivals_test.cpp — properties of the seeded open-loop arrival process.
//
// The load generator's whole credibility rests on this stream: it must be
// Poisson in the mean (or the offered load is mislabeled), reproducible
// per seed (or BENCH_loadgen.json baselines are meaningless), and
// distinct across seeds (or "two seeds" in CI is one seed twice).
#include "benchkit/arrivals.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace {

using benchkit::arrivals::Arrival;
using benchkit::arrivals::merge_schedule;
using benchkit::arrivals::PoissonStream;

TEST(PoissonStream, EmpiricalMeanMatchesRate) {
  // 1/λ for λ = 10k/s is 100 us.  With n = 50k draws the sample mean of
  // an exponential sits within ~1% of 1/λ at >5 sigma, so a 3% tolerance
  // is both tight (catches a wrong inverse-CDF) and unflaky.
  const double rate = 10000.0;
  PoissonStream stream(42, rate);
  const int n = 50000;
  double sum_ns = 0;
  for (int i = 0; i < n; ++i) {
    sum_ns += static_cast<double>(stream.next_gap());
  }
  const double mean_ns = sum_ns / n;
  const double expect_ns = 1e9 / rate;
  EXPECT_NEAR(mean_ns, expect_ns, 0.03 * expect_ns)
      << "empirical mean " << mean_ns << " ns vs 1/lambda " << expect_ns;
}

TEST(PoissonStream, ReproduciblePerSeed) {
  PoissonStream a(7, 25000.0);
  PoissonStream b(7, 25000.0);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_EQ(a.next_gap(), b.next_gap()) << "diverged at draw " << i;
  }
}

TEST(PoissonStream, DistinctSeedsDistinctStreams) {
  PoissonStream a(1, 25000.0);
  PoissonStream b(2, 25000.0);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_gap() != b.next_gap()) ++differing;
  }
  // Two independent exponential streams collide on an exact integer
  // nanosecond draw only rarely; 90 of 100 differing is a loose floor.
  EXPECT_GT(differing, 90);
}

TEST(PoissonStream, GapsArePositive) {
  // Even at an absurd rate (mean gap ~1 ns) the stream must never emit a
  // zero-length gap, or two "arrivals" merge into one instant.
  PoissonStream stream(3, 1e9);
  for (int i = 0; i < 10000; ++i) {
    ASSERT_GE(stream.next_gap(), 1);
  }
}

TEST(PoissonStream, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonStream(1, 0.0), std::invalid_argument);
  EXPECT_THROW(PoissonStream(1, -5.0), std::invalid_argument);
}

TEST(MergeSchedule, OrderedAndBounded) {
  const simtime::SimTime horizon = simtime::ms(10);
  const std::vector<Arrival> schedule =
      merge_schedule(11, {5000.0, 2000.0, 1000.0}, horizon);
  ASSERT_FALSE(schedule.empty());
  bool saw_class[3] = {false, false, false};
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    ASSERT_GE(schedule[i].cls, 0);
    ASSERT_LT(schedule[i].cls, 3);
    saw_class[schedule[i].cls] = true;
    ASSERT_GT(schedule[i].at, 0);
    ASSERT_LE(schedule[i].at, horizon);
    if (i > 0) {
      ASSERT_GE(schedule[i].at, schedule[i - 1].at) << "unsorted at " << i;
    }
  }
  EXPECT_TRUE(saw_class[0]);
  EXPECT_TRUE(saw_class[1]);
  EXPECT_TRUE(saw_class[2]);
  // ~80 expected arrivals total (8k/s x 10 ms); half or double would mean
  // the rates leak across classes.
  EXPECT_GT(schedule.size(), 40u);
  EXPECT_LT(schedule.size(), 160u);
}

TEST(MergeSchedule, DeterministicPerSeedAndSeedSensitive) {
  const simtime::SimTime horizon = simtime::ms(5);
  const std::vector<double> rates = {8000.0, 4000.0};
  const std::vector<Arrival> a = merge_schedule(21, rates, horizon);
  const std::vector<Arrival> b = merge_schedule(21, rates, horizon);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].at, b[i].at);
    ASSERT_EQ(a[i].cls, b[i].cls);
  }
  const std::vector<Arrival> c = merge_schedule(22, rates, horizon);
  bool differs = c.size() != a.size();
  for (std::size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].at != c[i].at || a[i].cls != c[i].cls;
  }
  EXPECT_TRUE(differs) << "seed 21 and 22 produced the same schedule";
}

TEST(MergeSchedule, ClassStreamsAreUnrelated) {
  // Classes at the same rate must not be shifted copies of one another —
  // the per-class seed mixing is what keeps them independent.
  const std::vector<Arrival> schedule =
      merge_schedule(5, {3000.0, 3000.0}, simtime::ms(10));
  std::vector<simtime::SimTime> t0;
  std::vector<simtime::SimTime> t1;
  for (const Arrival& a : schedule) {
    (a.cls == 0 ? t0 : t1).push_back(a.at);
  }
  ASSERT_GT(t0.size(), 5u);
  ASSERT_GT(t1.size(), 5u);
  int equal = 0;
  const std::size_t n = std::min(t0.size(), t1.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (t0[i] == t1[i]) ++equal;
  }
  EXPECT_EQ(equal, 0) << "same-rate classes share arrival instants";
}

TEST(MergeSchedule, NonPositiveRateContributesNothing) {
  const std::vector<Arrival> schedule =
      merge_schedule(9, {0.0, 5000.0, -1.0}, simtime::ms(5));
  for (const Arrival& a : schedule) {
    EXPECT_EQ(a.cls, 1);
  }
  EXPECT_FALSE(schedule.empty());
}

}  // namespace
