// Tests for the PingPong measurement harness itself.
#include "benchkit/pingpong.hpp"

#include <gtest/gtest.h>

#include "baseline/handcoded.hpp"

namespace {

using benchkit::Method;
using benchkit::PingPongSpec;
using cellpilot::ChannelType;

TEST(Benchkit, MethodNames) {
  EXPECT_STREQ(benchkit::to_string(Method::kCellPilot), "CellPilot");
  EXPECT_STREQ(benchkit::to_string(Method::kDma), "DMA");
  EXPECT_STREQ(benchkit::to_string(Method::kCopy), "Copy");
}

TEST(Benchkit, EveryCellOfTableTwoIsPositive) {
  const simtime::CostModel cost = simtime::default_cost_model();
  for (int type = 1; type <= 5; ++type) {
    for (std::size_t bytes : {std::size_t{1}, std::size_t{1600}}) {
      for (Method m : {Method::kCellPilot, Method::kDma, Method::kCopy}) {
        PingPongSpec spec;
        spec.type = static_cast<ChannelType>(type);
        spec.bytes = bytes;
        spec.reps = 10;
        EXPECT_GT(benchkit::pingpong(spec, m, cost), 0)
            << "type " << type << " bytes " << bytes << " method "
            << benchkit::to_string(m);
      }
    }
  }
}

TEST(Benchkit, BaselinesAreDeterministicToo) {
  const simtime::CostModel cost = simtime::default_cost_model();
  const auto a =
      baseline::dma_pingpong(ChannelType::kType5, 1600, 25, cost);
  const auto b =
      baseline::dma_pingpong(ChannelType::kType5, 1600, 25, cost);
  EXPECT_EQ(a, b);
  const auto c =
      baseline::copy_pingpong(ChannelType::kType3, 64, 25, cost);
  const auto d =
      baseline::copy_pingpong(ChannelType::kType3, 64, 25, cost);
  EXPECT_EQ(c, d);
}

TEST(Benchkit, ThroughputIsBytesOverOneWayTime) {
  const simtime::CostModel cost = simtime::default_cost_model();
  PingPongSpec spec;
  spec.type = ChannelType::kType2;
  spec.bytes = 1600;
  spec.reps = 20;
  const double one_way_us =
      benchkit::pingpong_us(spec, Method::kDma, cost);
  const double mbps = benchkit::throughput_mbps(spec, Method::kDma, cost);
  EXPECT_NEAR(mbps, 1600.0 / one_way_us, 0.01);
}

TEST(Benchkit, RepsDoNotChangeSteadyStateLatency) {
  // One-way latency is elapsed/2N: once the pipeline fills, more reps
  // converge to the same per-transfer figure.
  const simtime::CostModel cost = simtime::default_cost_model();
  PingPongSpec few;
  few.type = ChannelType::kType4;
  few.bytes = 16;
  few.reps = 50;
  PingPongSpec many = few;
  many.reps = 200;
  const double a = benchkit::pingpong_us(few, Method::kCellPilot, cost);
  const double b = benchkit::pingpong_us(many, Method::kCellPilot, cost);
  EXPECT_NEAR(a, b, a * 0.02);
}

TEST(Benchkit, HarnessIsReentrant) {
  // The harness carries no global state: interleaving runs with different
  // specs reproduces each spec's isolated result exactly.
  const simtime::CostModel cost = simtime::default_cost_model();
  PingPongSpec small;
  small.type = ChannelType::kType2;
  small.bytes = 16;
  small.reps = 20;
  PingPongSpec large;
  large.type = ChannelType::kType5;
  large.bytes = 1600;
  large.reps = 20;

  const auto small_alone = benchkit::pingpong(small, Method::kCellPilot, cost);
  const auto large_alone = benchkit::pingpong(large, Method::kCellPilot, cost);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(benchkit::pingpong(small, Method::kCellPilot, cost),
              small_alone);
    EXPECT_EQ(benchkit::pingpong(large, Method::kCellPilot, cost),
              large_alone);
  }
}

TEST(Benchkit, ZeroCostModelCollapsesLatency) {
  const simtime::CostModel zero = simtime::zero_cost_model();
  PingPongSpec spec;
  spec.type = ChannelType::kType2;
  spec.bytes = 64;
  spec.reps = 10;
  EXPECT_EQ(benchkit::pingpong(spec, Method::kDma, zero), 0);
  EXPECT_EQ(benchkit::pingpong(spec, Method::kCellPilot, zero), 0);
}

}  // namespace
