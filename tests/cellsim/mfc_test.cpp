// Unit + property tests for the MFC (DMA engine): size/alignment rules,
// tag-group completion semantics, DMA lists, chunking helpers.
#include "cellsim/mfc.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>

#include "cellsim/local_store.hpp"
#include "simtime/cost_model.hpp"
#include "simtime/virtual_clock.hpp"

namespace {

using namespace cellsim;
using simtime::us;

class MfcTest : public ::testing::Test {
 protected:
  MfcTest() : cost_(simtime::default_cost_model()), mfc_(ls_, clock_, cost_, "spe0") {}

  LocalStore ls_;
  simtime::VirtualClock clock_;
  simtime::CostModel cost_;
  Mfc mfc_;
  alignas(128) std::array<std::byte, 64 * 1024> main_{};
};

TEST_F(MfcTest, GetMovesDataIntoLocalStore) {
  std::memcpy(main_.data(), "0123456789abcdef", 16);
  mfc_.get(0, ea_of(main_.data()), 16, 0);
  EXPECT_EQ(std::memcmp(ls_.at(0, 16), main_.data(), 16), 0);
}

TEST_F(MfcTest, PutMovesDataOutOfLocalStore) {
  std::memcpy(ls_.at(128, 16), "fedcba9876543210", 16);
  mfc_.put(128, ea_of(main_.data()), 16, 1);
  EXPECT_EQ(std::memcmp(main_.data(), "fedcba9876543210", 16), 0);
}

TEST_F(MfcTest, SmallSizesRequireNaturalAlignment) {
  EXPECT_NO_THROW(mfc_.get(8, ea_of(main_.data()) + 8, 8, 0));
  EXPECT_THROW(mfc_.get(4, ea_of(main_.data()) + 4, 8, 0), DmaFault);
  EXPECT_THROW(mfc_.get(8, ea_of(main_.data()) + 4, 8, 0), DmaFault);
}

TEST_F(MfcTest, QuadMultiplesRequire16ByteAlignment) {
  EXPECT_NO_THROW(mfc_.get(16, ea_of(main_.data()), 32, 0));
  EXPECT_THROW(mfc_.get(8, ea_of(main_.data()), 32, 0), DmaFault);
  EXPECT_THROW(mfc_.get(16, ea_of(main_.data()) + 8, 32, 0), DmaFault);
}

TEST_F(MfcTest, IllegalSizesFault) {
  for (std::size_t bad : {3u, 5u, 12u, 17u, 33u}) {
    EXPECT_THROW(mfc_.get(0, ea_of(main_.data()), bad, 0), DmaFault)
        << "size " << bad;
  }
}

TEST_F(MfcTest, OversizeCommandFaults) {
  EXPECT_THROW(mfc_.get(0, ea_of(main_.data()), 16 * 1024 + 16, 0), DmaFault);
  EXPECT_NO_THROW(mfc_.get(0, ea_of(main_.data()), 16 * 1024, 0));
}

TEST_F(MfcTest, TagOutOfRangeFaults) {
  EXPECT_THROW(mfc_.get(0, ea_of(main_.data()), 16, 32), DmaFault);
  EXPECT_NO_THROW(mfc_.get(0, ea_of(main_.data()), 16, 31));
}

TEST_F(MfcTest, TagStatusAllStallsToCompletion) {
  mfc_.get(0, ea_of(main_.data()), 1600, 5);
  mfc_.write_tag_mask(1u << 5);
  const std::uint32_t done = mfc_.read_tag_status_all();
  EXPECT_EQ(done, 1u << 5);
  EXPECT_GE(clock_.now(), cost_.dma_transfer(1600));
}

TEST_F(MfcTest, TagStatusOnlyCoversMaskedTags) {
  mfc_.get(0, ea_of(main_.data()), 16, 2);
  mfc_.get(64, ea_of(main_.data()) + 64, 16, 3);
  mfc_.write_tag_mask(1u << 2);
  EXPECT_EQ(mfc_.read_tag_status_all(), 1u << 2);
  // Tag 3 is still outstanding.
  mfc_.write_tag_mask(1u << 3);
  EXPECT_EQ(mfc_.read_tag_status_all(), 1u << 3);
}

TEST_F(MfcTest, ImmediateStatusDoesNotStall) {
  mfc_.get(0, ea_of(main_.data()), 1600, 1);
  mfc_.write_tag_mask(1u << 1);
  // Completion is in the future: immediate read reports not-done.
  EXPECT_EQ(mfc_.read_tag_status_immediate(), 0u);
  clock_.advance(cost_.dma_transfer(1600));
  EXPECT_EQ(mfc_.read_tag_status_immediate(), 1u << 1);
}

TEST_F(MfcTest, ListCommandGathersElements) {
  std::memcpy(main_.data(), "AAAA BBBB CCCC  ", 16);
  std::memcpy(main_.data() + 1024, "DDDDEEEEFFFFGGGG", 16);
  std::vector<MfcListElement> list{{ea_of(main_.data()), 16},
                                   {ea_of(main_.data() + 1024), 16}};
  mfc_.get_list(0, list, 0);
  EXPECT_EQ(std::memcmp(ls_.at(0, 16), main_.data(), 16), 0);
  EXPECT_EQ(std::memcmp(ls_.at(16, 16), main_.data() + 1024, 16), 0);
}

TEST_F(MfcTest, StatsCountCommandsAndBytes) {
  mfc_.get(0, ea_of(main_.data()), 16, 0);
  mfc_.put(0, ea_of(main_.data()), 1600, 0);
  EXPECT_EQ(mfc_.commands_issued(), 2u);
  EXPECT_EQ(mfc_.bytes_moved(), 1616u);
}

/// Property: get_any/put_any handle arbitrary sizes on well-aligned
/// buffers, preserving the data exactly.
class MfcAnySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MfcAnySweep, RoundTripsArbitrarySizes) {
  const std::size_t n = GetParam();
  LocalStore ls;
  simtime::VirtualClock clock;
  const simtime::CostModel cost = simtime::default_cost_model();
  Mfc mfc(ls, clock, cost, "sweep");
  std::vector<std::byte> main_buf(n + 128);
  // Align the EA to 128.
  auto base = reinterpret_cast<std::uintptr_t>(main_buf.data());
  const std::uintptr_t aligned = (base + 127) & ~std::uintptr_t{127};
  std::byte* src = reinterpret_cast<std::byte*>(aligned);
  for (std::size_t i = 0; i < n; ++i) src[i] = static_cast<std::byte>(i * 7);

  mfc.get_any(0, ea_of(src), n, 0);
  mfc.write_tag_mask(1);
  mfc.read_tag_status_all();
  EXPECT_EQ(std::memcmp(ls.at(0, n), src, n), 0);

  std::vector<std::byte> out(n + 128);
  base = reinterpret_cast<std::uintptr_t>(out.data());
  std::byte* dst = reinterpret_cast<std::byte*>((base + 127) & ~std::uintptr_t{127});
  mfc.put_any(0, ea_of(dst), n, 0);
  mfc.write_tag_mask(1);
  mfc.read_tag_status_all();
  EXPECT_EQ(std::memcmp(dst, src, n), 0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MfcAnySweep,
                         ::testing::Values(1, 2, 3, 7, 8, 15, 16, 17, 100,
                                           1600, 4095, 4096, 16 * 1024,
                                           16 * 1024 + 1, 40000));

}  // namespace

namespace {

TEST_F(MfcTest, ListCommandScattersElements) {
  std::memcpy(ls_.at(0, 32), "0123456789abcdefFEDCBA9876543210", 32);
  std::vector<MfcListElement> list{{ea_of(main_.data()), 16},
                                   {ea_of(main_.data() + 2048), 16}};
  mfc_.put_list(0, list, 3);
  EXPECT_EQ(std::memcmp(main_.data(), "0123456789abcdef", 16), 0);
  EXPECT_EQ(std::memcmp(main_.data() + 2048, "FEDCBA9876543210", 16), 0);
  mfc_.write_tag_mask(1u << 3);
  EXPECT_EQ(mfc_.read_tag_status_all(), 1u << 3);
}

TEST_F(MfcTest, ListElementsShareOneSetupCost) {
  // List continuation elements ride the first element's setup: completion
  // is max(setup+transfer, per-chunk continuations), far below two full
  // setups.
  std::vector<MfcListElement> list{{ea_of(main_.data()), 16},
                                   {ea_of(main_.data() + 1024), 16}};
  mfc_.get_list(0, list, 0);
  mfc_.write_tag_mask(1);
  mfc_.read_tag_status_all();
  EXPECT_EQ(clock_.now(), cost_.dma_transfer(16));
  EXPECT_LT(clock_.now(), 2 * cost_.dma_transfer(16));
}

}  // namespace
