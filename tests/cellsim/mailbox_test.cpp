// Unit tests for SPE mailbox FIFOs (hardware depths, stalls, stamps).
#include "cellsim/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "cellsim/signal.hpp"
#include "cellsim/spe.hpp"

namespace {

using namespace cellsim;
using simtime::us;

TEST(Mailbox, RejectsZeroCapacity) { EXPECT_THROW(Mailbox m(0), MailboxFault); }

TEST(Mailbox, FifoOrderAndStamps) {
  Mailbox m(4);
  ASSERT_TRUE(m.try_push(1, us(1)));
  ASSERT_TRUE(m.try_push(2, us(2)));
  auto a = m.pop_blocking();
  auto b = m.pop_blocking();
  EXPECT_EQ(a.value, 1u);
  EXPECT_EQ(a.stamp, us(1));
  EXPECT_EQ(b.value, 2u);
  EXPECT_EQ(b.stamp, us(2));
}

TEST(Mailbox, TryPushFailsWhenFull) {
  Mailbox m(1);
  EXPECT_TRUE(m.try_push(7, 0));
  EXPECT_FALSE(m.try_push(8, 0));
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.free_slots(), 0u);
}

TEST(Mailbox, TryPopEmptyReturnsNothing) {
  Mailbox m(4);
  EXPECT_FALSE(m.try_pop().has_value());
}

TEST(Mailbox, HardwareDepthsMatchCellBe) {
  EXPECT_EQ(kInboundMailboxDepth, 4u);
  EXPECT_EQ(kOutboundMailboxDepth, 1u);
  EXPECT_EQ(kOutboundInterruptMailboxDepth, 1u);
}

TEST(Mailbox, BlockingPushStallsUntilDrained) {
  Mailbox m(1);
  ASSERT_TRUE(m.try_push(1, 0));
  std::thread writer([&] { m.push_blocking(2, us(9)); });
  // Give the writer a chance to block, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(m.pop_blocking().value, 1u);
  writer.join();
  EXPECT_EQ(m.pop_blocking().value, 2u);
}

TEST(Mailbox, BlockingPopStallsUntilDataArrives) {
  Mailbox m(4);
  std::uint32_t got = 0;
  std::thread reader([&] { got = m.pop_blocking().value; });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  m.push_blocking(42, 0);
  reader.join();
  EXPECT_EQ(got, 42u);
}

TEST(Mailbox, CloseWakesBlockedReaderWithFault) {
  Mailbox m(4);
  std::exception_ptr seen;
  std::thread reader([&] {
    try {
      m.pop_blocking();
    } catch (...) {
      seen = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  m.close();
  reader.join();
  ASSERT_TRUE(seen != nullptr);
  EXPECT_THROW(std::rethrow_exception(seen), MailboxFault);
}

TEST(Mailbox, CloseWakesBlockedWriterWithFault) {
  Mailbox m(1);
  ASSERT_TRUE(m.try_push(1, 0));
  std::exception_ptr seen;
  std::thread writer([&] {
    try {
      m.push_blocking(2, 0);
    } catch (...) {
      seen = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  m.close();
  writer.join();
  ASSERT_TRUE(seen != nullptr);
  EXPECT_THROW(std::rethrow_exception(seen), MailboxFault);
}

TEST(Mailbox, ClosedMailboxDrainsThenFaults) {
  Mailbox m(4);
  m.try_push(5, 0);
  m.close();
  EXPECT_TRUE(m.closed());
  // A queued entry is still deliverable...
  EXPECT_EQ(m.pop_blocking().value, 5u);
  // ...but an empty closed mailbox faults.
  EXPECT_THROW(m.pop_blocking(), MailboxFault);
  EXPECT_THROW(m.try_pop(), MailboxFault);
  EXPECT_THROW(m.try_push(1, 0), MailboxFault);
}

TEST(SignalRegister, OrModeAccumulates) {
  cellsim::SignalRegister sig(/*or_mode=*/true);
  sig.send(0b001, us(1));
  sig.send(0b100, us(2));
  const auto r = sig.read_blocking();
  EXPECT_EQ(r.bits, 0b101u);
  EXPECT_EQ(r.stamp, us(2));
  EXPECT_EQ(sig.peek(), 0u);  // read clears
}

TEST(SignalRegister, OverwriteModeKeepsLast) {
  cellsim::SignalRegister sig(/*or_mode=*/false);
  sig.send(0b001, us(1));
  sig.send(0b100, us(2));
  EXPECT_EQ(sig.read_blocking().bits, 0b100u);
}

TEST(SignalRegister, ReadBlocksUntilNonZero) {
  cellsim::SignalRegister sig;
  std::uint32_t got = 0;
  std::thread reader([&] { got = sig.read_blocking().bits; });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sig.send(9, 0);
  reader.join();
  EXPECT_EQ(got, 9u);
}

}  // namespace
