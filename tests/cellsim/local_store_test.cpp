// Unit + property tests for the 256 KB local store and its allocator.
#include "cellsim/local_store.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace {

using namespace cellsim;

TEST(LocalStore, IsExactly256K) {
  LocalStore ls;
  EXPECT_EQ(ls.size(), 256u * 1024u);
  EXPECT_EQ(ls.size(), kLocalStoreSize);
}

TEST(LocalStore, ReadWriteRoundTrip) {
  LocalStore ls;
  const char msg[] = "cell broadband engine";
  ls.write(1024, msg, sizeof msg);
  char out[sizeof msg] = {};
  ls.read(1024, out, sizeof msg);
  EXPECT_STREQ(out, msg);
}

TEST(LocalStore, AccessAtExactEndIsAllowed) {
  LocalStore ls;
  EXPECT_NO_THROW(ls.at(kLocalStoreSize - 16, 16));
  EXPECT_NO_THROW(ls.at(kLocalStoreSize, 0));
}

TEST(LocalStore, OutOfRangeAccessFaults) {
  LocalStore ls;
  EXPECT_THROW(ls.at(kLocalStoreSize - 15, 16), LocalStoreFault);
  EXPECT_THROW(ls.at(kLocalStoreSize + 1, 0), LocalStoreFault);
  EXPECT_THROW(ls.at(0, kLocalStoreSize + 1), LocalStoreFault);
}

TEST(LocalStore, FillSetsEveryByte) {
  LocalStore ls;
  ls.fill(std::byte{0xAB});
  EXPECT_EQ(ls.base()[0], std::byte{0xAB});
  EXPECT_EQ(ls.base()[kLocalStoreSize - 1], std::byte{0xAB});
}

TEST(LsAllocator, FirstFitAndAlignment) {
  LsAllocator a;
  const LsAddr p1 = a.allocate(100, 16);
  const LsAddr p2 = a.allocate(100, 128);
  EXPECT_EQ(p1 % 16, 0u);
  EXPECT_EQ(p2 % 128, 0u);
  EXPECT_NE(p1, p2);
}

TEST(LsAllocator, RejectsZeroLengthAndBadAlignment) {
  LsAllocator a;
  EXPECT_THROW(a.allocate(0), LocalStoreFault);
  EXPECT_THROW(a.allocate(16, 3), LocalStoreFault);
}

TEST(LsAllocator, ExhaustionFaultsWithDiagnostic) {
  LsAllocator a;
  a.allocate(200 * 1024);
  try {
    a.allocate(100 * 1024);
    FAIL() << "expected LocalStoreFault";
  } catch (const LocalStoreFault& e) {
    EXPECT_NE(std::string(e.what()).find("exhausted"), std::string::npos);
  }
}

TEST(LsAllocator, FreeingMakesSpaceReusable) {
  LsAllocator a;
  const LsAddr p = a.allocate(128 * 1024);
  EXPECT_THROW(a.allocate(200 * 1024), LocalStoreFault);
  a.deallocate(p);
  EXPECT_NO_THROW(a.allocate(200 * 1024));
}

TEST(LsAllocator, CoalescingMergesNeighbours) {
  LsAllocator a;
  const LsAddr p1 = a.allocate(64 * 1024);
  const LsAddr p2 = a.allocate(64 * 1024);
  const LsAddr p3 = a.allocate(64 * 1024);
  a.deallocate(p1);
  a.deallocate(p3);
  // Middle still allocated: the largest hole is 64K (plus the tail).
  a.deallocate(p2);
  EXPECT_EQ(a.largest_free_block(), kLocalStoreSize);
}

TEST(LsAllocator, DoubleFreeFaults) {
  LsAllocator a;
  const LsAddr p = a.allocate(64);
  a.deallocate(p);
  EXPECT_THROW(a.deallocate(p), LocalStoreFault);
}

TEST(LsAllocator, WildFreeFaults) {
  LsAllocator a;
  a.allocate(64);
  EXPECT_THROW(a.deallocate(12345), LocalStoreFault);
}

TEST(LsAllocator, SegmentsAreAccounted) {
  LsAllocator a;
  a.reserve_segment("text:prog", 10336);
  a.reserve_segment("stack", 8192);
  EXPECT_EQ(a.segment_bytes(), 10336u + 8192u);
  ASSERT_EQ(a.segments().size(), 2u);
  EXPECT_EQ(a.segments()[0].name, "text:prog");
  EXPECT_GE(a.used(), 10336u + 8192u);
}

TEST(LsAllocator, ResetRestoresPowerOnState) {
  LsAllocator a;
  a.reserve_segment("text", 1024);
  a.allocate(4096);
  a.reset();
  EXPECT_EQ(a.used(), 0u);
  EXPECT_EQ(a.segment_bytes(), 0u);
  EXPECT_EQ(a.largest_free_block(), kLocalStoreSize);
}

TEST(LsAllocator, UsedTracksLiveBytes) {
  LsAllocator a;
  const LsAddr p = a.allocate(1000, 16);
  EXPECT_GE(a.used(), 1000u);
  a.deallocate(p);
  EXPECT_EQ(a.used(), 0u);
}

/// Property sweep: allocations of many sizes/alignments all land aligned and
/// within the store, and freeing everything restores full capacity.
class LsAllocatorSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(LsAllocatorSweep, AlignedInRangeAndReclaimable) {
  const auto [len, align] = GetParam();
  LsAllocator a;
  std::vector<LsAddr> blocks;
  // Allocate until exhaustion (bounded: first-fit over a long free list is
  // quadratic, so tiny-block sweeps stop at a few thousand live blocks).
  try {
    while (blocks.size() < 4096) blocks.push_back(a.allocate(len, align));
  } catch (const LocalStoreFault&) {
  }
  EXPECT_FALSE(blocks.empty());
  for (const LsAddr p : blocks) {
    EXPECT_EQ(p % align, 0u);
    EXPECT_LE(p + len, kLocalStoreSize);
  }
  for (const LsAddr p : blocks) a.deallocate(p);
  EXPECT_EQ(a.largest_free_block(), kLocalStoreSize);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndAlignments, LsAllocatorSweep,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{16, 16},
                      std::pair<std::size_t, std::size_t>{100, 16},
                      std::pair<std::size_t, std::size_t>{1600, 128},
                      std::pair<std::size_t, std::size_t>{4096, 256},
                      std::pair<std::size_t, std::size_t>{65536, 16}));

}  // namespace
