// Unit tests for SPE code overlays (paper §II.A).
#include "cellsim/overlay.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "cellsim/libspe2.hpp"
#include "cellsim/spu.hpp"

namespace {

using namespace cellsim;

const simtime::CostModel kCost = simtime::default_cost_model();

/// Runs `body` as an SPE program on a fresh SPE.
template <typename Body>
void on_spe(Body&& body) {
  static thread_local std::function<void()> t_body;
  t_body = std::forward<Body>(body);
  Spe spe(0, "ov.spe0", kCost);
  spe2::SpeContext ctx(spe);
  const spe2::spe_program_handle_t prog{
      "overlay_body",
      +[](std::uint64_t, std::uint64_t, std::uint64_t) -> int {
        t_body();
        return 0;
      },
      2048};
  ctx.run(prog, 0, 0);
}

TEST(Overlay, OffSpeConstructionFaults) {
  EXPECT_THROW(OverlayRegion region, ContextFault);
}

TEST(Overlay, RegionSizedToLargestSegment) {
  on_spe([] {
    OverlayRegion region;
    region.register_segment("small", 10 * 1024);
    EXPECT_EQ(region.region_bytes(), 10u * 1024u);
    region.register_segment("large", 60 * 1024);
    EXPECT_EQ(region.region_bytes(), 60u * 1024u);
    region.register_segment("medium", 30 * 1024);
    EXPECT_EQ(region.region_bytes(), 60u * 1024u);
  });
}

TEST(Overlay, FirstUseLoadsThenResidencyIsFree) {
  on_spe([] {
    OverlayRegion region;
    const OverlaySegment a = region.register_segment("a", 16 * 1024);
    EXPECT_EQ(region.resident(), -1);
    EXPECT_TRUE(region.ensure_loaded(a));
    EXPECT_FALSE(region.ensure_loaded(a));
    EXPECT_EQ(region.swap_count(), 1u);
    EXPECT_EQ(region.resident(), a.id);
  });
}

TEST(Overlay, SwapsChargeDmaTime) {
  on_spe([] {
    simtime::VirtualClock& clock = spu::self().clock();
    OverlayRegion region;
    const OverlaySegment a = region.register_segment("a", 32 * 1024);
    const OverlaySegment b = region.register_segment("b", 32 * 1024);
    const simtime::SimTime before = clock.now();
    region.ensure_loaded(a);
    region.ensure_loaded(b);
    region.ensure_loaded(a);
    EXPECT_EQ(region.swap_count(), 3u);
    EXPECT_EQ(clock.now() - before, 3 * kCost.dma_transfer(32 * 1024));
  });
}

TEST(Overlay, RunExecutesBodyWithSegmentResident) {
  on_spe([] {
    OverlayRegion region;
    const OverlaySegment phase1 = region.register_segment("phase1", 8192);
    const OverlaySegment phase2 = region.register_segment("phase2", 8192);
    int calls = 0;
    const int result = region.run(phase1, [&] {
      ++calls;
      EXPECT_EQ(region.resident(), phase1.id);
      return 41;
    });
    EXPECT_EQ(result, 41);
    region.run(phase2, [&] { ++calls; });
    region.run(phase2, [&] { ++calls; });  // no swap
    EXPECT_EQ(calls, 3);
    EXPECT_EQ(region.swap_count(), 2u);
  });
}

TEST(Overlay, GrowingInvalidatesResidency) {
  on_spe([] {
    OverlayRegion region;
    const OverlaySegment a = region.register_segment("a", 4096);
    region.ensure_loaded(a);
    region.register_segment("big", 8192);  // re-reserves the region
    EXPECT_EQ(region.resident(), -1);
    EXPECT_TRUE(region.ensure_loaded(a));
  });
}

TEST(Overlay, LocalStoreBudgetStillEnforced) {
  on_spe([] {
    OverlayRegion region;
    // Text+stack are already charged; a 260 KB overlay cannot fit.
    EXPECT_THROW(region.register_segment("huge", 260 * 1024),
                 LocalStoreFault);
  });
}

TEST(Overlay, ZeroSizedSegmentRejected) {
  on_spe([] {
    OverlayRegion region;
    EXPECT_THROW(region.register_segment("empty", 0), LocalStoreFault);
  });
}

TEST(Overlay, UnknownHandleFaults) {
  on_spe([] {
    OverlayRegion region;
    EXPECT_THROW(region.ensure_loaded(OverlaySegment{5}), LocalStoreFault);
    EXPECT_THROW(region.segment_name(OverlaySegment{-1}), LocalStoreFault);
  });
}

TEST(Overlay, SegmentNamesAreKept) {
  on_spe([] {
    OverlayRegion region;
    const OverlaySegment s = region.register_segment("fft-pass", 1024);
    EXPECT_EQ(region.segment_name(s), "fft-pass");
  });
}

}  // namespace
