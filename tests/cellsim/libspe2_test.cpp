// Unit tests for the libspe2-style context shim and the SPU intrinsics
// binding.
#include "cellsim/libspe2.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "cellsim/cell.hpp"
#include "cellsim/errors.hpp"
#include "cellsim/spu.hpp"

namespace {

using namespace cellsim;
using namespace cellsim::spe2;

const simtime::CostModel kCost = simtime::default_cost_model();

int trivial_main(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  return static_cast<int>(argp);
}

int ls_probe_main(std::uint64_t, std::uint64_t argp, std::uint64_t) {
  // While running, intrinsics must be bound and the local store usable.
  EXPECT_TRUE(spu::bound());
  auto* used = static_cast<std::size_t*>(
      ptr_of(static_cast<EffectiveAddress>(argp)));
  *used = spu::self().allocator().used();
  const LsAddr p = spu::ls_alloc(1024);
  std::memset(spu::ls_ptr(p, 1024), 0x5A, 1024);
  spu::ls_free(p);
  return 0;
}

int mbox_echo_main(std::uint64_t, std::uint64_t, std::uint64_t) {
  const std::uint32_t v = spu::spu_read_in_mbox();
  spu::spu_write_out_mbox(v + 1);
  return 0;
}

TEST(Libspe2, RunReturnsProgramExitCode) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext ctx(spe);
  spe_stop_info_t stop;
  const spe_program_handle_t prog{"trivial", &trivial_main, 1024};
  EXPECT_EQ(ctx.run(prog, 42, 0, &stop), 42);
  EXPECT_EQ(stop.exit_code, 42);
}

TEST(Libspe2, LoaderChargesTextAndStack) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext ctx(spe);
  std::size_t used_during_run = 0;
  const spe_program_handle_t prog{"probe", &ls_probe_main, 10000};
  ctx.run(prog, ea_of(&used_during_run), 0);
  EXPECT_GE(used_during_run, 10000u + kDefaultSpeStackBytes);
}

TEST(Libspe2, ReloadResetsTheLocalStore) {
  Spe spe(0, "t.spe0", kCost);
  const spe_program_handle_t prog{"probe", &ls_probe_main, 10000};
  std::size_t first = 0, second = 0;
  {
    SpeContext ctx(spe);
    ctx.run(prog, ea_of(&first), 0);
  }
  {
    SpeContext ctx(spe);
    ctx.run(prog, ea_of(&second), 0);
  }
  EXPECT_EQ(first, second);  // no leak across reloads
}

TEST(Libspe2, OneContextPerSpe) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext ctx(spe);
  EXPECT_THROW(SpeContext second(spe), ContextFault);
}

TEST(Libspe2, ContextFreedOnDestroy) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext* ctx = spe_context_create(spe);
  spe_context_destroy(ctx);
  EXPECT_NO_THROW(SpeContext again(spe));
}

TEST(Libspe2, NullArgumentsFault) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext ctx(spe);
  EXPECT_THROW(spe_context_run(nullptr, nullptr, 0, 0), ContextFault);
  const spe_program_handle_t no_entry{"bad", nullptr, 0};
  EXPECT_THROW(ctx.run(no_entry, 0, 0), ContextFault);
}

TEST(Libspe2, MailboxApiRoundTrip) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext* ctx = spe_context_create(spe);
  const spe_program_handle_t prog{"echo", &mbox_echo_main, 1024};
  std::thread runner([&] { spe_context_run(ctx, &prog, 0, 0); });

  const std::uint32_t in = 41;
  EXPECT_EQ(spe_in_mbox_write(ctx, &in, 1, simtime::us(1)), 1);

  std::uint32_t out = 0;
  simtime::SimTime stamp = 0;
  while (spe_out_mbox_read(ctx, &out, 1, &stamp) == 0) {
    std::this_thread::yield();
  }
  runner.join();
  EXPECT_EQ(out, 42u);
  EXPECT_GT(stamp, 0);
  EXPECT_EQ(spe_out_mbox_status(ctx), 0);
  spe_context_destroy(ctx);
}

TEST(Libspe2, LsAreaIsTheMappedStore) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext* ctx = spe_context_create(spe);
  EXPECT_EQ(spe_ls_area_get(ctx), spe.local_store().base());
  spe_context_destroy(ctx);
}

TEST(Spu, IntrinsicsFaultOffSpe) {
  EXPECT_FALSE(spu::bound());
  EXPECT_THROW(spu::self(), ContextFault);
  EXPECT_THROW(spu::spu_read_in_mbox(), ContextFault);
  EXPECT_THROW(spu::mfc_write_tag_mask(1), ContextFault);
}

TEST(Spe, SignalIndexValidated) {
  Spe spe(0, "t.spe0", kCost);
  EXPECT_NO_THROW(spe.signal(0));
  EXPECT_NO_THROW(spe.signal(1));
  EXPECT_THROW(spe.signal(2), HardwareFault);
}

TEST(Spe, LsToEaTranslationIsBoundsChecked) {
  Spe spe(0, "t.spe0", kCost);
  EXPECT_EQ(spe.ls_to_ea(0, 16), spe.ls_effective_base());
  EXPECT_THROW(spe.ls_to_ea(kLocalStoreSize - 1, 16), LocalStoreFault);
}

TEST(CellBlade, FlatSpeIndexSpansBothChips) {
  CellBlade blade("b", kCost);
  EXPECT_EQ(blade.spe_count(), 16u);
  EXPECT_EQ(blade.spe(0).name(), "b.cell0.spe0");
  EXPECT_EQ(blade.spe(8).name(), "b.cell1.spe0");
  EXPECT_EQ(blade.spe(15).name(), "b.cell1.spe7");
  EXPECT_THROW(blade.spe(16), HardwareFault);
}

TEST(CellProcessor, HasEightSpesByDefault) {
  CellProcessor chip("c", kCost);
  EXPECT_EQ(chip.spe_count(), 8u);
  EXPECT_THROW(chip.spe(8), HardwareFault);
}

TEST(Ppe, HasTwoHardwareThreads) {
  Ppe ppe("p");
  EXPECT_NO_THROW(ppe.thread_clock(0));
  EXPECT_NO_THROW(ppe.thread_clock(1));
  EXPECT_THROW(ppe.thread_clock(2), HardwareFault);
}

}  // namespace

namespace {

int intr_mbox_main(std::uint64_t, std::uint64_t, std::uint64_t) {
  cellsim::spu::spu_write_out_intr_mbox(0xFEED);
  return 0;
}

TEST(Libspe2, InterruptMailboxCarriesUrgentWords) {
  Spe spe(0, "t.spe0", kCost);
  SpeContext ctx(spe);
  const spe_program_handle_t prog{"intr", &intr_mbox_main, 1024};
  ctx.run(prog, 0, 0);
  const auto entry = spe.outbound_interrupt_mailbox().try_pop();
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->value, 0xFEEDu);
  // The regular outbound mailbox stays empty.
  EXPECT_FALSE(spe.outbound_mailbox().try_pop().has_value());
}

TEST(Eib, RecordsType4Traffic) {
  cellsim::Eib eib;
  eib.record("spe0", "spe1", 1600);
  eib.record("spe1", "spe0", 16);
  EXPECT_EQ(eib.transfer_count(), 2u);
  EXPECT_EQ(eib.total_bytes(), 1616u);
  const auto log = eib.transfers();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].src, "spe0");
  EXPECT_EQ(log[1].bytes, 16u);
}

}  // namespace
