// Unit tests for MPI matching rules in the per-rank queue.
#include "mpisim/match_queue.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace {

using namespace mpisim;

InboundMessage msg(Rank src, int tag, std::size_t bytes = 0,
                   simtime::SimTime arrival = 0) {
  InboundMessage m;
  m.source = src;
  m.tag = tag;
  m.payload.resize(bytes);
  m.arrival = arrival;
  return m;
}

TEST(MatchQueue, ExactMatch) {
  MatchQueue q;
  q.deposit(msg(1, 10));
  q.deposit(msg(2, 20));
  const InboundMessage got = q.match_blocking(2, 20);
  EXPECT_EQ(got.source, 2);
  EXPECT_EQ(got.tag, 20);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(MatchQueue, WildcardSourceAndTag) {
  MatchQueue q;
  q.deposit(msg(3, 30));
  EXPECT_EQ(q.match_blocking(kAnySource, 30).source, 3);
  q.deposit(msg(4, 40));
  EXPECT_EQ(q.match_blocking(4, kAnyTag).tag, 40);
  q.deposit(msg(5, 50));
  EXPECT_EQ(q.match_blocking(kAnySource, kAnyTag).source, 5);
}

TEST(MatchQueue, NonOvertakingSameSourceSameTag) {
  MatchQueue q;
  q.deposit(msg(1, 10, 1));
  q.deposit(msg(1, 10, 2));
  EXPECT_EQ(q.match_blocking(1, 10).payload.size(), 1u);
  EXPECT_EQ(q.match_blocking(1, 10).payload.size(), 2u);
}

TEST(MatchQueue, MatchSkipsNonMatchingEarlierMessages) {
  MatchQueue q;
  q.deposit(msg(1, 10));
  q.deposit(msg(2, 20));
  EXPECT_EQ(q.match_blocking(2, 20).source, 2);
  EXPECT_EQ(q.pending(), 1u);  // the (1,10) message is untouched
}

TEST(MatchQueue, TryMatchReturnsNulloptOnMiss) {
  MatchQueue q;
  q.deposit(msg(1, 10));
  EXPECT_FALSE(q.try_match(1, 99).has_value());
  EXPECT_TRUE(q.try_match(1, 10).has_value());
}

TEST(MatchQueue, ProbeIsNonDestructive) {
  MatchQueue q;
  q.deposit(msg(1, 10, 64));
  const auto env = q.probe(kAnySource, kAnyTag);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->source, 1);
  EXPECT_EQ(env->bytes, 64u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(MatchQueue, BlockingMatchWaitsForDeposit) {
  MatchQueue q;
  std::size_t got = 0;
  std::thread reader([&] { got = q.match_blocking(7, 70).payload.size(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.deposit(msg(7, 70, 9));
  reader.join();
  EXPECT_EQ(got, 9u);
}

TEST(MatchQueue, ProbeBlockingLeavesMessage) {
  MatchQueue q;
  std::thread writer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    q.deposit(msg(1, 5, 3));
  });
  const Envelope env = q.probe_blocking(1, 5);
  writer.join();
  EXPECT_EQ(env.bytes, 3u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(MatchQueue, ProbeAnyPrefersEarlierPattern) {
  MatchQueue q;
  q.deposit(msg(2, 20));
  q.deposit(msg(1, 10));
  const MatchQueue::Pattern patterns[] = {{1, 10}, {2, 20}};
  const auto [idx, env] = q.probe_any_blocking(patterns);
  EXPECT_EQ(idx, 0u);  // pattern order, not arrival order
  EXPECT_EQ(env.source, 1);
}

TEST(MatchQueue, TryProbeAnyMissesCleanly) {
  MatchQueue q;
  const MatchQueue::Pattern patterns[] = {{1, 10}};
  EXPECT_FALSE(q.try_probe_any(patterns).has_value());
  q.deposit(msg(1, 10));
  EXPECT_TRUE(q.try_probe_any(patterns).has_value());
}

TEST(MatchQueue, AbortWakesBlockedMatcher) {
  MatchQueue q;
  std::exception_ptr seen;
  std::thread reader([&] {
    try {
      q.match_blocking(1, 1);
    } catch (...) {
      seen = std::current_exception();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.abort("test teardown");
  reader.join();
  ASSERT_TRUE(seen != nullptr);
  try {
    std::rethrow_exception(seen);
  } catch (const WorldAborted& e) {
    EXPECT_NE(std::string(e.what()).find("test teardown"), std::string::npos);
  }
}

TEST(MatchQueue, AbortedQueueThrowsOnEveryOp) {
  MatchQueue q;
  q.abort("dead");
  EXPECT_THROW(q.try_match(1, 1), WorldAborted);
  EXPECT_THROW(q.probe(1, 1), WorldAborted);
  EXPECT_THROW(q.match_blocking(1, 1), WorldAborted);
}

TEST(MatchQueue, DepositAfterAbortIsDropped) {
  MatchQueue q;
  q.abort("dead");
  q.deposit(msg(1, 1));
  EXPECT_EQ(q.pending(), 0u);
}

}  // namespace
