// Unit + integration tests for MiniMPI: point-to-point semantics, timing
// legs, collectives, probes, abort propagation, and the launcher.
#include "mpisim/mpi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "mpisim/launcher.hpp"

namespace {

using namespace mpisim;
using simtime::CoreKind;

std::vector<RankInfo> xeon_ranks(int n) {
  std::vector<RankInfo> ranks;
  for (int i = 0; i < n; ++i) {
    ranks.push_back({CoreKind::kXeon, i, "r" + std::to_string(i)});
  }
  return ranks;
}

TEST(World, RequiresAtLeastOneRank) {
  const simtime::CostModel cost = simtime::default_cost_model();
  EXPECT_THROW(World({}, cost), MpiError);
}

TEST(World, RankValidation) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  EXPECT_NO_THROW(w.check_rank(0, "t"));
  EXPECT_THROW(w.check_rank(2, "t"), MpiError);
  EXPECT_THROW(w.check_rank(-1, "t"), MpiError);
}

TEST(World, SameNodePlacement) {
  const simtime::CostModel cost = simtime::default_cost_model();
  std::vector<RankInfo> ranks = xeon_ranks(3);
  ranks[1].node = 0;  // ranks 0 and 1 share node 0
  World w(ranks, cost);
  EXPECT_TRUE(w.same_node(0, 1));
  EXPECT_FALSE(w.same_node(0, 2));
}

TEST(Mpi, SendRecvRoundTrip) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  std::atomic<int> got{0};
  launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      const int v = 1234;
      mpi.send(&v, sizeof v, 1, 5);
    } else {
      int v = 0;
      const Status st = mpi.recv(&v, sizeof v, 0, 5);
      got.store(v);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.bytes, sizeof v);
    }
    return 0;
  });
  EXPECT_EQ(got.load(), 1234);
}

TEST(Mpi, ReceiverClockReflectsNetworkLatency) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  std::atomic<simtime::SimTime> t{0};
  launch(w, [&](Mpi& mpi) {
    std::uint8_t b = 0;
    if (mpi.rank() == 0) {
      mpi.send(&b, 1, 1, 1);
    } else {
      mpi.recv(&b, 1, 0, 1);
      t.store(mpi.clock().now());
    }
    return 0;
  });
  EXPECT_EQ(t.load(),
            cost.mpi_network_message(1, CoreKind::kXeon, CoreKind::kXeon));
}

TEST(Mpi, IntraNodeUsesSharedMemoryTransport) {
  const simtime::CostModel cost = simtime::default_cost_model();
  std::vector<RankInfo> ranks = xeon_ranks(2);
  ranks[1].node = 0;
  World w(ranks, cost);
  std::atomic<simtime::SimTime> t{0};
  launch(w, [&](Mpi& mpi) {
    std::uint8_t b = 0;
    if (mpi.rank() == 0) {
      mpi.send(&b, 1, 1, 1);
    } else {
      mpi.recv(&b, 1, 0, 1);
      t.store(mpi.clock().now());
    }
    return 0;
  });
  EXPECT_EQ(t.load(), cost.mpi_local_message(1));
}

TEST(Mpi, TruncationIsAnError) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  const LaunchResult r = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      const double big[4] = {};
      mpi.send(big, sizeof big, 1, 1);
    } else {
      double small[2];
      mpi.recv(small, sizeof small, 0, 1);
    }
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("truncation"), std::string::npos);
}

TEST(Mpi, ReservedTagsRejectedForUsers) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  const LaunchResult r = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::uint8_t b = 0;
      mpi.send(&b, 1, 1, kReservedTagBase);
    }
    return 0;
  });
  EXPECT_TRUE(r.aborted);
}

TEST(Mpi, AnySourceReceivesFromEveryone) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(4), cost);
  std::atomic<int> sum{0};
  launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int i = 1; i < 4; ++i) {
        int v = 0;
        mpi.recv(&v, sizeof v, kAnySource, 9);
        sum.fetch_add(v);
      }
    } else {
      const int v = mpi.rank();
      mpi.send(&v, sizeof v, 0, 9);
    }
    return 0;
  });
  EXPECT_EQ(sum.load(), 1 + 2 + 3);
}

TEST(Mpi, IprobeSeesPendingMessage) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  launch(w, [&](Mpi& mpi) -> int {
    if (mpi.rank() == 0) {
      const int v = 7;
      mpi.send(&v, sizeof v, 1, 3);
      mpi.barrier();
    } else {
      mpi.barrier();  // after: the message must be queued
      const auto env = mpi.iprobe(0, 3);
      EXPECT_TRUE(env.has_value());
      if (env) {
        EXPECT_EQ(env->bytes, sizeof(int));
      }
      EXPECT_FALSE(mpi.iprobe(0, 99).has_value());
      int v;
      mpi.recv(&v, sizeof v, 0, 3);
    }
    return 0;
  });
}

TEST(Mpi, BarrierSynchronizesClocks) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(3), cost);
  std::atomic<simtime::SimTime> late{0};
  std::atomic<simtime::SimTime> after0{0};
  launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 2) {
      mpi.clock().advance(simtime::ms(5));  // a slow rank
      late.store(mpi.clock().now());
    }
    mpi.barrier();
    if (mpi.rank() == 0) after0.store(mpi.clock().now());
    return 0;
  });
  EXPECT_GE(after0.load(), late.load());
}

TEST(Mpi, BcastDeliversToAll) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(4), cost);
  std::atomic<int> sum{0};
  launch(w, [&](Mpi& mpi) {
    int v = mpi.rank() == 1 ? 99 : 0;
    mpi.bcast(&v, sizeof v, 1);
    sum.fetch_add(v);
    return 0;
  });
  EXPECT_EQ(sum.load(), 99 * 4);
}

TEST(Mpi, GatherCollectsInRankOrder) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(4), cost);
  std::array<int, 4> all{};
  launch(w, [&](Mpi& mpi) {
    const int mine = mpi.rank() * 11;
    mpi.gather(&mine, sizeof mine, mpi.rank() == 0 ? all.data() : nullptr, 0);
    return 0;
  });
  EXPECT_EQ(all, (std::array<int, 4>{0, 11, 22, 33}));
}

TEST(Mpi, ReduceAndAllreduceSum) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(3), cost);
  std::atomic<double> total{0};
  launch(w, [&](Mpi& mpi) {
    const double contrib[2] = {1.0 * mpi.rank(), 2.0};
    double out[2] = {};
    mpi.allreduce_sum(contrib, out, 2);
    EXPECT_DOUBLE_EQ(out[0], 0.0 + 1.0 + 2.0);
    EXPECT_DOUBLE_EQ(out[1], 6.0);
    if (mpi.rank() == 0) total.store(out[0]);
    return 0;
  });
  EXPECT_DOUBLE_EQ(total.load(), 3.0);
}

TEST(Launcher, CollectsExitCodes) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(3), cost);
  const LaunchResult r = launch(w, [](Mpi& mpi) { return mpi.rank() * 10; });
  EXPECT_FALSE(r.aborted);
  EXPECT_EQ(r.exit_codes, (std::vector<int>{0, 10, 20}));
}

TEST(Launcher, ExceptionAbortsWholeJob) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  const LaunchResult r = launch(w, [](Mpi& mpi) -> int {
    if (mpi.rank() == 1) throw std::runtime_error("boom");
    // Rank 0 would block forever without the abort.
    std::uint8_t b;
    mpi.recv(&b, 1, 1, 1);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("boom"), std::string::npos);
  ASSERT_EQ(r.errors.size(), 1u);
}

TEST(World, AbortHooksRunOnce) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(1), cost);
  int calls = 0;
  w.on_abort([&] { ++calls; });
  w.abort("first");
  w.abort("second");
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(w.abort_reason(), "first");
}

}  // namespace
