// Unit tests for the reliable delivery sublayer (mpisim/reliable.hpp):
// framing/CRC pure functions, the receiver window at the MatchQueue
// boundary, and whole-World runs with each message-level fault injected
// through the mpisim::inject hook directly (no fault plan involved).
#include "mpisim/reliable.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "mpisim/inject.hpp"
#include "mpisim/launcher.hpp"
#include "mpisim/mpi.hpp"
#include "simtime/sim_time.hpp"

namespace {

using namespace mpisim;
using simtime::CoreKind;

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::vector<RankInfo> xeon_ranks(int n) {
  std::vector<RankInfo> ranks;
  for (int i = 0; i < n; ++i) {
    ranks.push_back({CoreKind::kXeon, i, "r" + std::to_string(i)});
  }
  return ranks;
}

// --- pure functions ---------------------------------------------------------

TEST(ReliableFraming, Crc32KnownAnswer) {
  const std::vector<std::byte> check = bytes_of("123456789");
  EXPECT_EQ(reliable::crc32(check), 0xCBF43926u);
  EXPECT_EQ(reliable::crc32({}), 0u);
}

TEST(ReliableFraming, FrameRoundTrip) {
  const std::vector<std::byte> payload = bytes_of("hello, wire");
  const std::vector<std::byte> wire = reliable::frame(7, 2, payload);
  ASSERT_EQ(wire.size(), sizeof(reliable::FrameHeader) + payload.size());

  const auto parsed = reliable::unframe(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header.magic, reliable::kFrameMagic);
  EXPECT_EQ(parsed->header.seq, 7u);
  EXPECT_EQ(parsed->header.attempt, 2u);
  EXPECT_EQ(parsed->header.payload_bytes, payload.size());
  EXPECT_TRUE(parsed->crc_ok);
  EXPECT_EQ(parsed->payload, payload);
}

TEST(ReliableFraming, EmptyPayloadRoundTrip) {
  const std::vector<std::byte> wire = reliable::frame(1, 1, {});
  const auto parsed = reliable::unframe(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->crc_ok);
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(ReliableFraming, CorruptionFailsCrcButParses) {
  const std::vector<std::byte> payload = bytes_of("precious bits");
  std::vector<std::byte> wire = reliable::frame(3, 1, payload);
  wire[sizeof(reliable::FrameHeader) + 4] ^= std::byte{0x01};

  const auto parsed = reliable::unframe(wire);
  ASSERT_TRUE(parsed.has_value());  // structurally fine ...
  EXPECT_FALSE(parsed->crc_ok);     // ... but the checksum catches it
}

TEST(ReliableFraming, HeaderCorruptionIsRejected) {
  std::vector<std::byte> wire = reliable::frame(3, 1, bytes_of("x"));
  wire[0] ^= std::byte{0xFF};  // damage the magic
  EXPECT_FALSE(reliable::unframe(wire).has_value());
}

TEST(ReliableFraming, ShortAndTruncatedBuffersRejected) {
  const std::vector<std::byte> wire = reliable::frame(9, 1, bytes_of("abcd"));
  std::vector<std::byte> header_only(wire.begin(),
                                     wire.begin() + sizeof(reliable::FrameHeader) - 1);
  EXPECT_FALSE(reliable::unframe(header_only).has_value());

  std::vector<std::byte> truncated(wire.begin(), wire.end() - 2);
  EXPECT_FALSE(reliable::unframe(truncated).has_value());
}

TEST(ReliableFraming, BackoffDoublesPerAttempt) {
  const simtime::SimTime saved_base = reliable::backoff(1);
  const int saved_retries = reliable::max_retries();

  reliable::set_backoff(simtime::us(100.0), 5);
  EXPECT_EQ(reliable::backoff(1), simtime::us(100.0));
  EXPECT_EQ(reliable::backoff(2), simtime::us(200.0));
  EXPECT_EQ(reliable::backoff(3), simtime::us(400.0));
  EXPECT_EQ(reliable::max_retries(), 5);

  reliable::set_backoff(saved_base, saved_retries);
}

// --- the receiver window at the MatchQueue boundary -------------------------

InboundMessage msg_with(int tag, int value) {
  InboundMessage m;
  m.source = 0;
  m.tag = tag;
  m.payload.resize(sizeof value);
  std::memcpy(m.payload.data(), &value, sizeof value);
  return m;
}

int value_of(const InboundMessage& m) {
  int v = 0;
  std::memcpy(&v, m.payload.data(), sizeof v);
  return v;
}

class ReliableWindowTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reliable::reset_links();
    reliable::reset_totals();
  }
  void TearDown() override {
    reliable::reset_links();
    reliable::reset_totals();
  }
};

TEST_F(ReliableWindowTest, BuffersGapAndReleasesInOrder) {
  MatchQueue q;
  // seq 2 arrives first: buffered, nothing released.
  EXPECT_FALSE(reliable::window_deposit(q, 0, 1, msg_with(5, 222), 2, 5));
  EXPECT_EQ(q.pending(), 0u);

  // seq 1 closes the gap: both frames drain, in sequence order.
  EXPECT_TRUE(reliable::window_deposit(q, 0, 1, msg_with(5, 111), 1, 5));
  EXPECT_EQ(q.pending(), 2u);
  EXPECT_EQ(value_of(q.match_blocking(0, 5)), 111);
  EXPECT_EQ(value_of(q.match_blocking(0, 5)), 222);
  EXPECT_EQ(reliable::totals().acks, 2u);
}

TEST_F(ReliableWindowTest, SuppressesDuplicates) {
  MatchQueue q;
  EXPECT_TRUE(reliable::window_deposit(q, 0, 1, msg_with(5, 111), 1, 5));
  // The same sequence again: discarded, counted.
  EXPECT_FALSE(reliable::window_deposit(q, 0, 1, msg_with(5, 111), 1, 5));
  EXPECT_EQ(q.pending(), 1u);
  EXPECT_EQ(reliable::totals().duplicates, 1u);

  // A duplicate of a frame still buffered in the window is also discarded.
  EXPECT_FALSE(reliable::window_deposit(q, 0, 1, msg_with(5, 333), 3, 5));
  EXPECT_FALSE(reliable::window_deposit(q, 0, 1, msg_with(5, 333), 3, 5));
  EXPECT_EQ(reliable::totals().duplicates, 2u);
}

TEST_F(ReliableWindowTest, LinksHaveIndependentSequenceSpaces) {
  EXPECT_EQ(reliable::next_seq(0, 1), 1u);
  EXPECT_EQ(reliable::next_seq(0, 1), 2u);
  EXPECT_EQ(reliable::next_seq(1, 0), 1u);  // the reverse link starts fresh
  EXPECT_EQ(reliable::next_seq(0, 2), 1u);

  reliable::reset_links();
  EXPECT_EQ(reliable::next_seq(0, 1), 1u);  // reset drops the counters
}

// --- whole-World runs with injected faults ----------------------------------

// The hook is a plain function pointer, so the per-test behaviour is
// parameterized through these globals.  `g_fault_budget` is the number of
// inject probes (delivery attempts) that still get the fault applied.
std::atomic<int> g_fault_budget{0};
std::atomic<int> g_fault_tag{-1};

template <bool inject::Action::* Flag>
inject::Action flag_hook(Rank, Rank, int tag, simtime::SimTime) {
  inject::Action act;
  if (tag != g_fault_tag.load() && g_fault_tag.load() != -1) return act;
  if (g_fault_budget.fetch_sub(1) > 0) act.*Flag = true;
  return act;
}

class ReliableWorldTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_hook_ = inject::detail::g_hook.load();
    inject::set_hook(nullptr);
    reliable::reset_links();
    reliable::reset_totals();
    reliable::set_enabled(true);
    g_fault_budget.store(0);
    g_fault_tag.store(-1);
  }
  void TearDown() override {
    reliable::set_enabled(false);
    inject::set_hook(saved_hook_);
    reliable::reset_links();
    reliable::reset_totals();
  }

  inject::Hook saved_hook_ = nullptr;
};

TEST_F(ReliableWorldTest, DropIsRetransmittedTransparently) {
  inject::set_hook(&flag_hook<&inject::Action::msg_drop>);
  g_fault_tag.store(5);
  g_fault_budget.store(1);  // lose exactly the first attempt

  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  std::atomic<int> got{0};
  const LaunchResult res = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      const int v = 4242;
      mpi.send(&v, sizeof v, 1, 5);
    } else {
      int v = 0;
      mpi.recv(&v, sizeof v, 0, 5);
      got.store(v);
    }
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(got.load(), 4242);
  EXPECT_EQ(reliable::totals().retransmits, 1u);
  EXPECT_GE(reliable::totals().acks, 1u);
}

TEST_F(ReliableWorldTest, CorruptionIsDetectedAndRetransmitted) {
  inject::set_hook(&flag_hook<&inject::Action::msg_corrupt>);
  g_fault_tag.store(5);
  g_fault_budget.store(2);  // damage the first two attempts

  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  std::atomic<int> got{0};
  const LaunchResult res = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      const int v = 777;
      mpi.send(&v, sizeof v, 1, 5);
    } else {
      int v = 0;
      mpi.recv(&v, sizeof v, 0, 5);
      got.store(v);
    }
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(got.load(), 777);  // the clean retransmission got through intact
  EXPECT_EQ(reliable::totals().corrupt_detected, 2u);
  EXPECT_EQ(reliable::totals().retransmits, 2u);
}

TEST_F(ReliableWorldTest, DuplicateIsDeliveredExactlyOnce) {
  inject::set_hook(&flag_hook<&inject::Action::msg_dup>);
  g_fault_tag.store(5);
  g_fault_budget.store(1);

  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  std::atomic<int> got{0};
  std::atomic<bool> extra{false};
  const LaunchResult res = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      const int v = 99;
      mpi.send(&v, sizeof v, 1, 5);
    } else {
      int v = 0;
      mpi.recv(&v, sizeof v, 0, 5);
      got.store(v);
      // The shadow copy must have been suppressed by the window.
      extra.store(mpi.iprobe(0, 5).has_value());
    }
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(got.load(), 99);
  EXPECT_FALSE(extra.load());
  EXPECT_EQ(reliable::totals().duplicates, 1u);
}

TEST_F(ReliableWorldTest, ReorderIsAbsorbedInOrder) {
  inject::set_hook(&flag_hook<&inject::Action::msg_reorder>);
  g_fault_tag.store(5);
  g_fault_budget.store(1);  // hold the first frame back past the second

  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  int seen[2] = {0, 0};
  const LaunchResult res = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int v : {111, 222}) mpi.send(&v, sizeof v, 1, 5);
    } else {
      for (int& slot : seen) mpi.recv(&slot, sizeof slot, 0, 5);
    }
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(seen[0], 111);  // program order survives the wire inversion
  EXPECT_EQ(seen[1], 222);
  EXPECT_EQ(reliable::totals().reorders, 1u);
}

// Satellite (c): adversarial interleavings across two channels (tags)
// sharing one link must not cross-deliver payloads — the window releases by
// link sequence, the MatchQueue then matches by tag.
TEST_F(ReliableWorldTest, CrossChannelReorderDoesNotCrossDeliver) {
  inject::set_hook(&flag_hook<&inject::Action::msg_reorder>);
  g_fault_tag.store(-1);  // every send on the link is a reorder candidate
  g_fault_budget.store(3);

  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  int chan_a[2] = {0, 0};
  int chan_b[2] = {0, 0};
  const LaunchResult res = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      // Interleave two "channels" (tags 5 and 6) on the same 0->1 link.
      for (int v : {1001, 2001, 1002, 2002}) {
        const int tag = v < 2000 ? 5 : 6;
        mpi.send(&v, sizeof v, 1, tag);
      }
    } else {
      for (int& slot : chan_a) mpi.recv(&slot, sizeof slot, 0, 5);
      for (int& slot : chan_b) mpi.recv(&slot, sizeof slot, 0, 6);
    }
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  EXPECT_EQ(chan_a[0], 1001);  // tag 5 only ever sees tag-5 payloads ...
  EXPECT_EQ(chan_a[1], 1002);
  EXPECT_EQ(chan_b[0], 2001);  // ... and in the order they were written
  EXPECT_EQ(chan_b[1], 2002);
  EXPECT_GE(reliable::totals().reorders, 1u);
}

TEST_F(ReliableWorldTest, FaultCocktailStillDeliversEverything) {
  // Rotate through all four message faults across a burst of sends.
  static std::atomic<int> calls{0};
  inject::set_hook(+[](Rank, Rank, int, simtime::SimTime) {
    inject::Action act;
    switch (calls.fetch_add(1) % 5) {
      case 0: act.msg_drop = true; break;
      case 1: act.msg_corrupt = true; break;
      case 2: act.msg_dup = true; break;
      case 3: act.msg_reorder = true; break;
      default: break;  // one clean send per cycle
    }
    return act;
  });
  calls.store(0);

  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  constexpr int kCount = 20;
  std::vector<int> seen;
  const LaunchResult res = launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (int v = 0; v < kCount; ++v) mpi.send(&v, sizeof v, 1, 7);
    } else {
      for (int i = 0; i < kCount; ++i) {
        int v = -1;
        mpi.recv(&v, sizeof v, 0, 7);
        seen.push_back(v);
      }
    }
    return 0;
  });
  EXPECT_FALSE(res.aborted);
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i);  // exactly once, in order
}

TEST_F(ReliableWorldTest, EnabledWithoutFaultsKeepsVirtualTimeParity) {
  const simtime::CostModel cost = simtime::default_cost_model();
  const auto run = [&cost]() {
    World w(xeon_ranks(2), cost);
    std::atomic<simtime::SimTime> finish{0};
    launch(w, [&](Mpi& mpi) {
      if (mpi.rank() == 0) {
        for (int v = 0; v < 8; ++v) {
          mpi.send(&v, sizeof v, 1, 3);
          int echo = 0;
          mpi.recv(&echo, sizeof echo, 1, 4);
        }
      } else {
        for (int i = 0; i < 8; ++i) {
          int v = 0;
          mpi.recv(&v, sizeof v, 0, 3);
          mpi.send(&v, sizeof v, 1 - mpi.rank(), 4);
        }
        finish.store(mpi.clock().now());
      }
      return 0;
    });
    return finish.load();
  };

  reliable::set_enabled(false);
  const simtime::SimTime baseline = run();
  reliable::set_enabled(true);
  reliable::reset_links();
  const simtime::SimTime framed = run();
  EXPECT_EQ(framed, baseline);  // the envelope is modeled as free
}

}  // namespace
