// Property tests for MiniMPI's ordering and timing guarantees under load.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "mpisim/launcher.hpp"
#include "mpisim/mpi.hpp"

namespace {

using namespace mpisim;
using simtime::CoreKind;

std::vector<RankInfo> xeon_ranks(int n) {
  std::vector<RankInfo> ranks;
  for (int i = 0; i < n; ++i) {
    ranks.push_back({CoreKind::kXeon, i, "r" + std::to_string(i)});
  }
  return ranks;
}

/// Non-overtaking holds per (sender, tag) even with many senders racing.
class FanIn : public ::testing::TestWithParam<int> {};

TEST_P(FanIn, PerSenderFifoOrderSurvivesContention) {
  const int senders = GetParam();
  constexpr int kPerSender = 50;
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(senders + 1), cost);
  std::atomic<bool> ok{true};
  launch(w, [&](Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::vector<int> next(static_cast<std::size_t>(senders + 1), 0);
      for (int i = 0; i < senders * kPerSender; ++i) {
        int seq = -1;
        const Status st = mpi.recv(&seq, sizeof seq, kAnySource, 1);
        if (seq != next[static_cast<std::size_t>(st.source)]++) {
          ok.store(false);
        }
      }
    } else {
      for (int seq = 0; seq < kPerSender; ++seq) {
        mpi.send(&seq, sizeof seq, 0, 1);
      }
    }
    return 0;
  });
  EXPECT_TRUE(ok.load());
}

INSTANTIATE_TEST_SUITE_P(Senders, FanIn, ::testing::Values(1, 2, 4, 8));

TEST(Ordering, TagsSelectIndependentStreams) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  launch(w, [&](Mpi& mpi) -> int {
    if (mpi.rank() == 0) {
      // Interleave two tag streams; the receiver reads tag 2 first.
      for (int i = 0; i < 10; ++i) {
        const int a = 100 + i;
        const int b = 200 + i;
        mpi.send(&a, sizeof a, 1, 1);
        mpi.send(&b, sizeof b, 1, 2);
      }
    } else {
      for (int i = 0; i < 10; ++i) {
        int v = 0;
        mpi.recv(&v, sizeof v, 0, 2);
        EXPECT_EQ(v, 200 + i);
      }
      for (int i = 0; i < 10; ++i) {
        int v = 0;
        mpi.recv(&v, sizeof v, 0, 1);
        EXPECT_EQ(v, 100 + i);
      }
    }
    return 0;
  });
}

TEST(Timing, BackToBackMessagesAccumulateSenderCost) {
  // Two sends cost the sender two sender-legs; the receiver's final clock
  // reflects the later arrival.
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  const auto legs =
      cost.mpi_leg_costs(8, CoreKind::kXeon, CoreKind::kXeon, false);
  std::atomic<simtime::SimTime> sender_clock{0};
  std::atomic<simtime::SimTime> receiver_clock{0};
  launch(w, [&](Mpi& mpi) {
    double v = 0;
    if (mpi.rank() == 0) {
      mpi.send(&v, sizeof v, 1, 1);
      mpi.send(&v, sizeof v, 1, 1);
      sender_clock.store(mpi.clock().now());
    } else {
      mpi.recv(&v, sizeof v, 0, 1);
      mpi.recv(&v, sizeof v, 0, 1);
      receiver_clock.store(mpi.clock().now());
    }
    return 0;
  });
  EXPECT_EQ(sender_clock.load(), 2 * legs.sender);
  // The receiver's first receive completes at sender+transit+receiver; the
  // second arrival (2*sender+transit) does not overtake it (sender and
  // receiver legs are equal here), so the final clock adds one more
  // receiver leg.
  EXPECT_EQ(receiver_clock.load(),
            legs.sender + legs.transit + 2 * legs.receiver);
}

TEST(Timing, JoinSemanticsIgnoreStaleArrivals) {
  // A receiver already past an arrival stamp pays only its receive leg.
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  const auto legs =
      cost.mpi_leg_costs(1, CoreKind::kXeon, CoreKind::kXeon, false);
  std::atomic<simtime::SimTime> receiver_clock{0};
  launch(w, [&](Mpi& mpi) {
    std::uint8_t b = 0;
    if (mpi.rank() == 0) {
      mpi.send(&b, 1, 1, 1);
    } else {
      mpi.clock().advance(simtime::ms(50));  // receiver far ahead
      mpi.recv(&b, 1, 0, 1);
      receiver_clock.store(mpi.clock().now());
    }
    return 0;
  });
  EXPECT_EQ(receiver_clock.load(), simtime::ms(50) + legs.receiver);
}

TEST(Timing, CollectiveResultsAreDeterministic) {
  const simtime::CostModel cost = simtime::default_cost_model();
  auto run_once = [&] {
    World w(xeon_ranks(5), cost);
    std::atomic<simtime::SimTime> t{0};
    launch(w, [&](Mpi& mpi) {
      double v = mpi.rank();
      double out[1];
      mpi.allreduce_sum(&v, out, 1);
      mpi.barrier();
      if (mpi.rank() == 0) t.store(mpi.clock().now());
      return 0;
    });
    return t.load();
  };
  const simtime::SimTime first = run_once();
  EXPECT_GT(first, 0);
  EXPECT_EQ(run_once(), first);
  EXPECT_EQ(run_once(), first);
}

TEST(Ordering, RecvAnySizeMatchesArbitraryLengths) {
  const simtime::CostModel cost = simtime::default_cost_model();
  World w(xeon_ranks(2), cost);
  launch(w, [&](Mpi& mpi) -> int {
    if (mpi.rank() == 0) {
      for (std::size_t n : {1u, 100u, 10000u}) {
        std::vector<std::byte> buf(n, std::byte{0x42});
        mpi.send(buf.data(), n, 1, 3);
      }
    } else {
      for (std::size_t n : {1u, 100u, 10000u}) {
        Status st;
        const auto buf = mpi.recv_any_size(0, 3, &st);
        EXPECT_EQ(buf.size(), n);
        EXPECT_EQ(st.bytes, n);
        EXPECT_EQ(buf.back(), std::byte{0x42});
      }
    }
    return 0;
  });
}

}  // namespace
