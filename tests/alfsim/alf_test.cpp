// Unit + property tests for the ALF-shaped data-parallel framework.
#include "alfsim/alf.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace {

using namespace alf;

const simtime::CostModel kCost = simtime::default_cost_model();

/// Kernel: out[i] = in[i] * 2 over int32 blocks.
void double_kernel(const void* in, std::size_t in_bytes, void* out,
                   std::size_t out_bytes) {
  const auto* src = static_cast<const std::int32_t*>(in);
  auto* dst = static_cast<std::int32_t*>(out);
  const std::size_t n = std::min(in_bytes, out_bytes) / sizeof(std::int32_t);
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i] * 2;
}

/// Kernel: writes a constant (no input).
void fill_kernel(const void*, std::size_t, void* out, std::size_t out_bytes) {
  std::memset(out, 0x7, out_bytes);
}

TaskDesc doubling_task(unsigned accelerators, std::size_t ints_per_block,
                       bool double_buffer = true) {
  TaskDesc desc;
  desc.kernel = &double_kernel;
  desc.in_block_bytes = ints_per_block * sizeof(std::int32_t);
  desc.out_block_bytes = desc.in_block_bytes;
  desc.accelerators = accelerators;
  desc.double_buffer = double_buffer;
  return desc;
}

TEST(Alf, TaskValidation) {
  cellsim::CellBlade blade("alf", kCost);
  Runtime rt(blade, kCost);
  TaskDesc bad;
  EXPECT_THROW(rt.create_task(bad), std::invalid_argument);  // no kernel
  bad.kernel = &double_kernel;
  EXPECT_THROW(rt.create_task(bad), std::invalid_argument);  // no data
  bad.in_block_bytes = 64;
  bad.accelerators = 17;  // more than the blade has
  EXPECT_THROW(rt.create_task(bad), std::invalid_argument);
}

TEST(Alf, ProcessesEveryBlockExactlyOnce) {
  cellsim::CellBlade blade("alf", kCost);
  Runtime rt(blade, kCost);
  constexpr int kBlocks = 24;
  constexpr std::size_t kInts = 32;

  alignas(128) static std::int32_t input[kBlocks][kInts];
  alignas(128) static std::int32_t output[kBlocks][kInts];
  for (int b = 0; b < kBlocks; ++b) {
    for (std::size_t i = 0; i < kInts; ++i) {
      input[b][i] = b * 100 + static_cast<int>(i);
      output[b][i] = -1;
    }
  }

  auto task = rt.create_task(doubling_task(4, kInts));
  for (int b = 0; b < kBlocks; ++b) {
    task->add_work_block(input[b], output[b]);
  }
  task->wait();

  EXPECT_EQ(task->blocks_processed(), static_cast<std::uint64_t>(kBlocks));
  for (int b = 0; b < kBlocks; ++b) {
    for (std::size_t i = 0; i < kInts; ++i) {
      ASSERT_EQ(output[b][i], 2 * (b * 100 + static_cast<int>(i)))
          << "block " << b << " index " << i;
    }
  }
}

TEST(Alf, WorkIsSharedAcrossAccelerators) {
  cellsim::CellBlade blade("alf", kCost);
  Runtime rt(blade, kCost);
  constexpr int kBlocks = 64;
  alignas(128) static std::int32_t in[kBlocks][16];
  alignas(128) static std::int32_t out[kBlocks][16];

  auto task = rt.create_task(doubling_task(4, 16));
  for (int b = 0; b < kBlocks; ++b) task->add_work_block(in[b], out[b]);
  task->wait();

  const auto per = task->per_accelerator_blocks();
  ASSERT_EQ(per.size(), 4u);
  const std::uint64_t total = std::accumulate(per.begin(), per.end(),
                                              std::uint64_t{0});
  EXPECT_EQ(total, static_cast<std::uint64_t>(kBlocks));
  // Demand-driven: no lane may process more than the whole queue, and the
  // busiest lane accounts for all blocks only if host scheduling let it
  // drain the queue before the others started — legal, so only bounds are
  // asserted here (the virtual-time overlap property has its own test).
  for (std::uint64_t n : per) EXPECT_LE(n, static_cast<std::uint64_t>(kBlocks));
}

TEST(Alf, OutputOnlyTasksWork) {
  cellsim::CellBlade blade("alf", kCost);
  Runtime rt(blade, kCost);
  TaskDesc desc;
  desc.kernel = &fill_kernel;
  desc.out_block_bytes = 64;
  desc.accelerators = 2;

  alignas(128) static std::uint8_t out[4][64];
  std::memset(out, 0, sizeof out);
  auto task = rt.create_task(desc);
  for (auto& block : out) task->add_work_block(nullptr, block);
  task->wait();
  for (auto& block : out) {
    for (std::uint8_t v : block) ASSERT_EQ(v, 0x7);
  }
}

TEST(Alf, FinalizeWithNoBlocksCompletes) {
  cellsim::CellBlade blade("alf", kCost);
  Runtime rt(blade, kCost);
  auto task = rt.create_task(doubling_task(2, 16));
  task->finalize();
  task->wait();
  EXPECT_EQ(task->blocks_processed(), 0u);
}

TEST(Alf, AddAfterFinalizeIsAnError) {
  cellsim::CellBlade blade("alf", kCost);
  Runtime rt(blade, kCost);
  auto task = rt.create_task(doubling_task(1, 16));
  task->finalize();
  int dummy = 0;
  EXPECT_THROW(task->add_work_block(&dummy, &dummy), std::invalid_argument);
  task->wait();
}

TEST(Alf, DoubleBufferingOverlapsTransferWithCompute) {
  // The ablation the framework exists for: with double buffering the next
  // block's DMA hides behind the kernel, so N blocks on one SPE cost about
  // N * max(dma, compute) instead of N * (dma + compute).
  constexpr int kBlocks = 16;
  constexpr std::size_t kInts = 2048;  // 8 KB blocks: dma cost visible
  alignas(128) static std::int32_t in[kBlocks][kInts];
  alignas(128) static std::int32_t out[kBlocks][kInts];

  auto run_once = [&](bool double_buffer) {
    cellsim::CellBlade blade("alf", kCost);
    Runtime rt(blade, kCost);
    auto task = rt.create_task(doubling_task(1, kInts, double_buffer));
    for (int b = 0; b < kBlocks; ++b) task->add_work_block(in[b], out[b]);
    task->wait();
    return task->elapsed();
  };

  const simtime::SimTime with = run_once(true);
  const simtime::SimTime without = run_once(false);
  EXPECT_LT(with, without);
}

/// Property: block counts and values survive any accelerator count.
class AlfScaling : public ::testing::TestWithParam<unsigned> {};

TEST_P(AlfScaling, CorrectForEveryAcceleratorCount) {
  const unsigned accelerators = GetParam();
  cellsim::CellBlade blade("alf", kCost);
  Runtime rt(blade, kCost);
  constexpr int kBlocks = 12;
  alignas(128) static std::int32_t in[kBlocks][8];
  alignas(128) static std::int32_t out[kBlocks][8];
  for (int b = 0; b < kBlocks; ++b) {
    for (int i = 0; i < 8; ++i) in[b][i] = b + i;
  }
  auto task = rt.create_task(doubling_task(accelerators, 8));
  for (int b = 0; b < kBlocks; ++b) task->add_work_block(in[b], out[b]);
  task->wait();
  EXPECT_EQ(task->blocks_processed(), static_cast<std::uint64_t>(kBlocks));
  for (int b = 0; b < kBlocks; ++b) {
    for (int i = 0; i < 8; ++i) ASSERT_EQ(out[b][i], 2 * (b + i));
  }
}

INSTANTIATE_TEST_SUITE_P(Lanes, AlfScaling,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

}  // namespace
