// Property tests: arbitrary format strings round-trip through real
// channels — rank-to-rank and through the Co-Pilot to an SPE — with the
// bytes intact, for a deterministic family of generated formats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <vector>

#include "core/cellpilot.hpp"
#include "pilot/format.hpp"

namespace {

/// Deterministic xorshift for format generation.
std::uint32_t xorshift(std::uint32_t& s) {
  s ^= s << 13;
  s ^= s >> 17;
  s ^= s << 5;
  return s;
}

/// Builds a random-but-reproducible format: 1..4 items, mixed types and
/// counts, no '*' (both sides share the literal string).
std::string generate_format(std::uint32_t seed) {
  static const char* kSpecs[] = {"b", "c", "hd", "d",  "ld",
                                 "u", "lu", "f", "lf", "Lf"};
  std::uint32_t s = seed * 2654435761u + 1;
  const int items = 1 + static_cast<int>(xorshift(s) % 4);
  std::string fmt;
  for (int i = 0; i < items; ++i) {
    if (!fmt.empty()) fmt += ' ';
    fmt += '%';
    const std::uint32_t count = xorshift(s) % 50;
    if (count > 1) fmt += std::to_string(count);
    fmt += kSpecs[xorshift(s) % 10];
  }
  return fmt;
}

/// Payload buffer sized for a format, filled with a deterministic pattern.
std::vector<std::byte> pattern_payload(const pilot::Format& fmt,
                                       std::uint32_t seed) {
  std::vector<std::byte> bytes(fmt.payload_bytes());
  std::uint32_t s = seed ^ 0xABCD1234u;
  for (auto& b : bytes) b = static_cast<std::byte>(xorshift(s) & 0xFF);
  return bytes;
}

// The app under test ships each format's payload as raw bytes using the
// byte-count equivalence: "%Nb" with N = payload_bytes carries identical
// wire bytes, and the independently parsed format signature is checked on
// the typed channel.
std::string g_fmt;
std::vector<std::byte> g_payload;
std::vector<std::byte> g_received;
PI_CHANNEL* g_ch = nullptr;
std::atomic<bool> g_match{false};

int rank_reader(int /*index*/, void* /*arg*/) {
  std::vector<std::byte> buf(g_payload.size());
  PI_Read(g_ch, "%*b", static_cast<int>(buf.size()), buf.data());
  g_received = buf;
  return 0;
}

PI_SPE_PROGRAM(spe_format_echo) {
  std::vector<std::byte> buf(g_payload.size());
  PI_Read(g_ch, "%*b", static_cast<int>(buf.size()), buf.data());
  g_received = buf;
  g_match.store(true);
  return 0;
}

class FormatChannelProperty : public ::testing::TestWithParam<std::uint32_t> {
};

TEST_P(FormatChannelProperty, PayloadBytesSurviveRankChannel) {
  const std::string fmt = generate_format(GetParam());
  const pilot::Format parsed = pilot::parse_format(fmt);
  g_payload = pattern_payload(parsed, GetParam());
  g_received.clear();

  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(2));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* reader = PI_CreateProcess(rank_reader, 0, nullptr);
    g_ch = PI_CreateChannel(PI_MAIN, reader);
    PI_StartAll();
    PI_Write(g_ch, "%*b", static_cast<int>(g_payload.size()),
             g_payload.data());
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << "format \"" << fmt << "\": " << r.abort_reason;
  EXPECT_EQ(g_received, g_payload) << "format \"" << fmt << "\"";
}

TEST_P(FormatChannelProperty, PayloadBytesSurviveCopilotRelay) {
  const std::string fmt = generate_format(GetParam() ^ 0x5555);
  const pilot::Format parsed = pilot::parse_format(fmt);
  g_payload = pattern_payload(parsed, GetParam() ^ 0x5555);
  // The SPE staging buffer must fit the payload plus runtime segments.
  if (g_payload.size() > 200 * 1024) g_payload.resize(200 * 1024);
  g_received.clear();
  g_match.store(false);

  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(spe_format_echo, PI_MAIN, 0);
    g_ch = PI_CreateChannel(PI_MAIN, spe);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_Write(g_ch, "%*b", static_cast<int>(g_payload.size()),
             g_payload.data());
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << "format \"" << fmt << "\": " << r.abort_reason;
  ASSERT_TRUE(g_match.load());
  EXPECT_EQ(g_received, g_payload) << "format \"" << fmt << "\"";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormatChannelProperty,
                         ::testing::Range(1u, 13u));

}  // namespace
