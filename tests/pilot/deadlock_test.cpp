// Tests for Pilot's integrated deadlock detection (-pisvc=d): genuine
// circular waits abort with a diagnostic naming the processes; healthy
// traffic is never falsely accused.
#include <gtest/gtest.h>

#include <atomic>

#include "core/cellpilot.hpp"

namespace {

cluster::Cluster xeon_cluster_with_service(unsigned ranks) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(ranks));
  config.deadlock_service = true;
  return cluster::Cluster(std::move(config));
}

PI_CHANNEL* g_a_to_b = nullptr;
PI_CHANNEL* g_b_to_a = nullptr;
PI_CHANNEL* g_b_to_c = nullptr;
PI_CHANNEL* g_c_to_a = nullptr;

cellpilot::RunOptions with_detection() {
  cellpilot::RunOptions opts;
  opts.args = {"-pisvc=d"};
  return opts;
}

int deadlock_peer(int /*index*/, void* /*arg*/) {
  // B reads from A while A reads from B: classic circular wait.
  int v = 0;
  PI_Read(g_a_to_b, "%d", &v);
  PI_Write(g_b_to_a, "%d", v);
  return 0;
}

TEST(Deadlock, TwoProcessCircularWaitIsDetected) {
  cluster::Cluster machine = xeon_cluster_with_service(2);
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* b = PI_CreateProcess(deadlock_peer, 0, nullptr);
        g_a_to_b = PI_CreateChannel(PI_MAIN, b);
        g_b_to_a = PI_CreateChannel(b, PI_MAIN);
        PI_StartAll();
        // Bug: PI_MAIN reads before writing; B reads first too.
        int v = 0;
        PI_Read(g_b_to_a, "%d", &v);
        PI_Write(g_a_to_b, "%d", v);
        PI_StopMain(0);
        return 0;
      },
      with_detection());
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("deadlock detected"), std::string::npos);
  EXPECT_NE(r.abort_reason.find("P0"), std::string::npos);
  EXPECT_NE(r.abort_reason.find("P1"), std::string::npos);
}

int ring_b(int /*index*/, void* /*arg*/) {
  int v = 0;
  PI_Read(g_b_to_c, "%d", &v);  // B waits for C... (channel c->b named oddly)
  return 0;
}

int ring_c(int /*index*/, void* /*arg*/) {
  int v = 0;
  PI_Read(g_c_to_a, "%d", &v);  // C waits for A
  return 0;
}

TEST(Deadlock, ThreeProcessCycleIsDetected) {
  // A waits on B, B waits on C, C waits on A.
  cluster::Cluster machine = xeon_cluster_with_service(3);
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* b = PI_CreateProcess(ring_b, 0, nullptr);
        PI_PROCESS* c = PI_CreateProcess(ring_c, 0, nullptr);
        g_a_to_b = PI_CreateChannel(b, PI_MAIN);  // A reads from B
        g_b_to_c = PI_CreateChannel(c, b);        // B reads from C
        g_c_to_a = PI_CreateChannel(PI_MAIN, c);  // C reads from A
        PI_StartAll();
        int v = 0;
        PI_Read(g_a_to_b, "%d", &v);
        PI_StopMain(0);
        return 0;
      },
      with_detection());
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("deadlock detected"), std::string::npos);
}

int busy_peer(int index, void* /*arg*/) {
  // Healthy request/response traffic with PI_MAIN.
  for (int i = 0; i < 50; ++i) {
    int v = 0;
    PI_Read(g_a_to_b, "%d", &v);
    PI_Write(g_b_to_a, "%d", v + index);
  }
  return 0;
}

TEST(Deadlock, HealthyTrafficIsNotFalselyAccused) {
  cluster::Cluster machine = xeon_cluster_with_service(2);
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* b = PI_CreateProcess(busy_peer, 1, nullptr);
        g_a_to_b = PI_CreateChannel(PI_MAIN, b);
        g_b_to_a = PI_CreateChannel(b, PI_MAIN);
        PI_StartAll();
        for (int i = 0; i < 50; ++i) {
          PI_Write(g_a_to_b, "%d", i);
          int v = 0;
          PI_Read(g_b_to_a, "%d", &v);
          EXPECT_EQ(v, i + 1);
        }
        PI_StopMain(0);
        return 0;
      },
      with_detection());
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

TEST(Deadlock, OptionWithoutServiceRankAborts) {
  // -pisvc=d on a cluster launched without the service process is a
  // usage error.
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(2));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_StartAll();
        PI_StopMain(0);
        return 0;
      },
      with_detection());
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("service"), std::string::npos);
}

TEST(Deadlock, DetectionOffMeansNoServiceTraffic) {
  // Without -pisvc=d the same circular program simply hangs on real MPI;
  // here we only verify a normal run with a service rank present but the
  // option off completes cleanly.
  cluster::Cluster machine = xeon_cluster_with_service(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* b = PI_CreateProcess(busy_peer, 1, nullptr);
    g_a_to_b = PI_CreateChannel(PI_MAIN, b);
    g_b_to_a = PI_CreateChannel(b, PI_MAIN);
    PI_StartAll();
    for (int i = 0; i < 50; ++i) {
      PI_Write(g_a_to_b, "%d", i);
      int v = 0;
      PI_Read(g_b_to_a, "%d", &v);
    }
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

}  // namespace
// --- extended detection: finished peers and global stalls --------------------

namespace {

int finishes_immediately(int /*index*/, void* /*arg*/) { return 0; }

TEST(Deadlock, WaitingOnAFinishedProcessIsDetected) {
  // No cycle exists: the peer simply returned without ever writing.
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(2));
  config.deadlock_service = true;
  cluster::Cluster machine(std::move(config));
  cellpilot::RunOptions opts;
  opts.args = {"-pisvc=d"};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* quitter = PI_CreateProcess(finishes_immediately, 0,
                                               nullptr);
        g_a_to_b = PI_CreateChannel(quitter, PI_MAIN);
        PI_StartAll();
        int v = 0;
        PI_Read(g_a_to_b, "%d", &v);  // the writer is already gone
        PI_StopMain(0);
        return 0;
      },
      opts);
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("already finished"), std::string::npos)
      << r.abort_reason;
}

int waits_on_main_forever(int /*index*/, void* /*arg*/) {
  int v = 0;
  PI_Read(g_a_to_b, "%d", &v);
  return 0;
}

TEST(Deadlock, GlobalStallWithoutDirectCycleIsDetected) {
  // Main waits on W's reply while W waits on main's other channel: at the
  // process level this IS a cycle — so to exercise the stall rule instead,
  // use three processes where the cycle spans a select-like shape the DFS
  // may not close: simplest honest case is main waiting on a channel whose
  // writer waits on a channel main will never write.  That is a 2-cycle,
  // caught by either rule; the assertion accepts both diagnostics.
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(2));
  config.deadlock_service = true;
  cluster::Cluster machine(std::move(config));
  cellpilot::RunOptions opts;
  opts.args = {"-pisvc=d"};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        PI_PROCESS* w = PI_CreateProcess(waits_on_main_forever, 0, nullptr);
        g_a_to_b = PI_CreateChannel(PI_MAIN, w);  // W reads this; main never writes
        g_b_to_a = PI_CreateChannel(w, PI_MAIN);  // main reads this; W never writes
        PI_StartAll();
        int v = 0;
        PI_Read(g_b_to_a, "%d", &v);
        PI_StopMain(0);
        return 0;
      },
      opts);
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("deadlock detected"), std::string::npos)
      << r.abort_reason;
}

}  // namespace
