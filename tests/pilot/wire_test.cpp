// Unit tests for argument marshalling and the channel wire format.
#include "pilot/wire.hpp"

#include <gtest/gtest.h>

#include <cstdarg>
#include <cstring>

namespace {

using namespace pilot;

// Helpers to exercise the va_list entry points from plain tests.
MarshalResult marshal(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  MarshalResult r = marshal_payload(parse_format(fmt), ap);
  va_end(ap);
  return r;
}

ReadPlan plan(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  ReadPlan p = build_read_plan(parse_format(fmt), ap);
  va_end(ap);
  return p;
}

TEST(Marshal, ScalarInt) {
  const MarshalResult r = marshal("%d", 42);
  ASSERT_EQ(r.payload.size(), 4u);
  int v = 0;
  std::memcpy(&v, r.payload.data(), 4);
  EXPECT_EQ(v, 42);
}

TEST(Marshal, ScalarPromotions) {
  // char and float arrive as int / double through varargs.
  const MarshalResult r = marshal("%c %f %Lf", 'x', 1.5, 2.5L);
  ASSERT_EQ(r.payload.size(), 1u + 4u + 16u);
  EXPECT_EQ(static_cast<char>(r.payload[0]), 'x');
  float f = 0;
  std::memcpy(&f, r.payload.data() + 1, 4);
  EXPECT_EQ(f, 1.5f);
  long double ld = 0;
  std::memcpy(&ld, r.payload.data() + 5, 16);
  EXPECT_EQ(ld, 2.5L);
}

TEST(Marshal, ArrayByPointer) {
  const int data[5] = {1, 2, 3, 4, 5};
  const MarshalResult r = marshal("%5d", data);
  ASSERT_EQ(r.payload.size(), 20u);
  EXPECT_EQ(std::memcmp(r.payload.data(), data, 20), 0);
}

TEST(Marshal, StarResolvesFromArgument) {
  const double data[3] = {1.0, 2.0, 3.0};
  const MarshalResult r = marshal("%*lf", 3, data);
  EXPECT_EQ(r.payload.size(), 24u);
  ASSERT_EQ(r.fmt.items.size(), 1u);
  EXPECT_EQ(r.fmt.items[0].count, 3u);
  EXPECT_FALSE(r.fmt.items[0].star);
}

TEST(Marshal, NonPositiveStarCountIsError) {
  const double data[1] = {};
  EXPECT_THROW(marshal("%*lf", 0, data), PilotError);
  EXPECT_THROW(marshal("%*lf", -5, data), PilotError);
}

TEST(Marshal, NullArrayPointerIsError) {
  EXPECT_THROW(marshal("%5d", static_cast<int*>(nullptr)), PilotError);
}

TEST(Marshal, MixedItemsConcatenateInOrder) {
  const float arr[2] = {9.0f, 8.0f};
  const MarshalResult r = marshal("%d %2f %b", 7, arr, 0xAB);
  EXPECT_EQ(r.payload.size(), 4u + 8u + 1u);
  EXPECT_EQ(static_cast<unsigned char>(r.payload[12]), 0xABu);
}

TEST(ReadPlanTest, DestinationsAndBytes) {
  int a = 0;
  double b[4] = {};
  const ReadPlan p = plan("%d %*lf", &a, 4, b);
  ASSERT_EQ(p.destinations.size(), 2u);
  EXPECT_EQ(p.destinations[0], &a);
  EXPECT_EQ(p.destinations[1], b);
  EXPECT_EQ(p.payload_bytes, 4u + 32u);
}

TEST(ReadPlanTest, NullDestinationIsError) {
  EXPECT_THROW(plan("%d", static_cast<int*>(nullptr)), PilotError);
}

TEST(Scatter, DistributesPayloadToDestinations) {
  int a = 0;
  float b[2] = {};
  const ReadPlan p = plan("%d %2f", &a, b);
  const MarshalResult m = marshal("%d %2f", 5, (const float[2]){1.f, 2.f});
  scatter(p, m.payload);
  EXPECT_EQ(a, 5);
  EXPECT_EQ(b[0], 1.f);
  EXPECT_EQ(b[1], 2.f);
}

TEST(Frame, RoundTripsThroughCheck) {
  const MarshalResult m = marshal("%3d", (const int[3]){1, 2, 3});
  const std::uint32_t sig = signature(m.fmt);
  const auto framed = frame_message(sig, m.payload);
  const auto payload = check_frame(framed, sig, 12, "test");
  EXPECT_EQ(payload.size(), 12u);
  EXPECT_EQ(std::memcmp(payload.data(), m.payload.data(), 12), 0);
}

TEST(Frame, SignatureMismatchIsTypeMismatch) {
  const MarshalResult m = marshal("%3d", (const int[3]){1, 2, 3});
  const auto framed = frame_message(signature(m.fmt), m.payload);
  try {
    check_frame(framed, signature(parse_format("%3u")), 12, "chan");
    FAIL() << "expected PilotError";
  } catch (const PilotError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTypeMismatch);
    EXPECT_NE(std::string(e.what()).find("chan"), std::string::npos);
  }
}

TEST(Frame, SizeMismatchIsTypeMismatch) {
  const MarshalResult m = marshal("%3d", (const int[3]){1, 2, 3});
  const std::uint32_t sig = signature(m.fmt);
  const auto framed = frame_message(sig, m.payload);
  EXPECT_THROW(check_frame(framed, sig, 16, "chan"), PilotError);
}

TEST(Frame, CorruptFramesAreInternalErrors) {
  std::vector<std::byte> junk(4);
  EXPECT_THROW(check_frame(junk, 0, 0, "x"), PilotError);  // short
  std::vector<std::byte> bad_magic(sizeof(WireHeader));
  EXPECT_THROW(check_frame(bad_magic, 0, 0, "x"), PilotError);
}

TEST(Frame, EmptyPayloadIsLegal) {
  // A zero-byte message is what an empty format ("") marshals to — a pure
  // synchronization token; the frame layer carries it as a bare header.
  const auto framed = frame_message(7, {});
  EXPECT_EQ(check_frame(framed, 7, 0, "x").size(), 0u);
}

}  // namespace
