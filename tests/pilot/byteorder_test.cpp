// Tests for heterogeneous byte-order support: Cell nodes are big-endian
// PowerPC, Xeon nodes little-endian x86-64, and values must cross between
// them intact (the paper: "MPI will take care of any conversions required
// between datatype lengths, endianness, and character codes").
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>

#include "core/cellpilot.hpp"
#include "pilot/byteorder.hpp"

namespace {

using pilot::ByteOrder;

TEST(ByteOrderUnit, SwapReversesMultiByteElementsOnly) {
  const pilot::Format fmt = pilot::parse_format("%d %2hd %b");
  std::array<std::byte, 4 + 4 + 1> payload{};
  const std::uint32_t word = 0x01020304;
  const std::uint16_t h0 = 0x1122, h1 = 0x3344;
  std::memcpy(payload.data(), &word, 4);
  std::memcpy(payload.data() + 4, &h0, 2);
  std::memcpy(payload.data() + 6, &h1, 2);
  payload[8] = std::byte{0xAA};

  pilot::swap_element_bytes(fmt, payload);

  std::uint32_t sw = 0;
  std::memcpy(&sw, payload.data(), 4);
  EXPECT_EQ(sw, 0x04030201u);
  std::uint16_t sh0 = 0, sh1 = 0;
  std::memcpy(&sh0, payload.data() + 4, 2);
  std::memcpy(&sh1, payload.data() + 6, 2);
  EXPECT_EQ(sh0, 0x2211);
  EXPECT_EQ(sh1, 0x4433);
  EXPECT_EQ(payload[8], std::byte{0xAA});  // %b untouched
}

TEST(ByteOrderUnit, DoubleSwapIsIdentity) {
  const pilot::Format fmt = pilot::parse_format("%3lf %2f %ld");
  std::vector<std::byte> payload(fmt.payload_bytes());
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::byte>(i * 13);
  }
  const std::vector<std::byte> original = payload;
  pilot::swap_element_bytes(fmt, payload);
  EXPECT_NE(payload, original);
  pilot::swap_element_bytes(fmt, payload);
  EXPECT_EQ(payload, original);
}

TEST(ByteOrderUnit, LengthMismatchIsInternalError) {
  const pilot::Format fmt = pilot::parse_format("%d");
  std::array<std::byte, 7> bad{};
  EXPECT_THROW(pilot::swap_element_bytes(fmt, bad), pilot::PilotError);
}

TEST(ByteOrderUnit, NodeKindsFixTheOrder) {
  EXPECT_EQ(cluster::NodeSpec::cell(1).order, simtime::ByteOrder::kBig);
  EXPECT_EQ(cluster::NodeSpec::xeon(1).order, simtime::ByteOrder::kLittle);
  EXPECT_STREQ(simtime::to_string(simtime::ByteOrder::kBig), "big");
}

// --- cross-endian channels ---------------------------------------------------

PI_CHANNEL* g_to_xeon = nullptr;
PI_CHANNEL* g_to_ppe = nullptr;
PI_CHANNEL* g_spe_up = nullptr;
std::atomic<double> g_value{0};
std::atomic<long long> g_ivalue{0};

int xeon_peer(int /*index*/, void* /*arg*/) {
  // Receives from a big-endian PPE, echoes back.
  double d = 0;
  long long i = 0;
  PI_Read(g_to_xeon, "%lf %ld", &d, &i);
  PI_Write(g_to_ppe, "%lf %ld", d * 2, i + 1);
  return 0;
}

TEST(ByteOrderChannel, PpeAndXeonExchangeValuesIntact) {
  // PI_MAIN on a Cell PPE (big-endian) <-> worker on a Xeon (little).
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));
  g_value.store(0);
  g_ivalue.store(0);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* xeon = PI_CreateProcess(xeon_peer, 0, nullptr);
    g_to_xeon = PI_CreateChannel(PI_MAIN, xeon);
    g_to_ppe = PI_CreateChannel(xeon, PI_MAIN);
    PI_StartAll();
    PI_Write(g_to_xeon, "%lf %ld", 3.25, 7000000001LL);
    double d = 0;
    long long i = 0;
    PI_Read(g_to_ppe, "%lf %ld", &d, &i);
    g_value.store(d);
    g_ivalue.store(i);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_DOUBLE_EQ(g_value.load(), 6.5);
  EXPECT_EQ(g_ivalue.load(), 7000000002LL);
}

PI_SPE_PROGRAM(spe_big_endian_probe) {
  // Read a value from the (little-endian) Xeon writer; the SPE's user code
  // sees host representation, and echoes it back up.
  int v = 0;
  PI_Read(g_to_ppe, "%d", &v);
  PI_Write(g_spe_up, "%d", v + 5);
  return 0;
}

int xeon_spe_writer(int /*index*/, void* /*arg*/) {
  PI_Write(g_to_ppe, "%d", 1000);
  return 0;
}

TEST(ByteOrderChannel, XeonToSpeType3CrossesEndiannessIntact) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));
  std::atomic<int> got{0};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* xeon = PI_CreateProcess(xeon_spe_writer, 0, nullptr);
    PI_PROCESS* spe = PI_CreateSPE(spe_big_endian_probe, PI_MAIN, 0);
    g_to_ppe = PI_CreateChannel(xeon, spe);
    g_spe_up = PI_CreateChannel(spe, PI_MAIN);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    int v = 0;
    PI_Read(g_spe_up, "%d", &v);
    got.store(v);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(got.load(), 1005);
}

PI_CHANNEL* g_ls_probe_ch = nullptr;
std::atomic<bool> g_ls_was_big_endian{false};

PI_SPE_PROGRAM(ls_image_prober) {
  // Peek at the raw staging image the Co-Pilot landed in local store: the
  // writer is a big-endian PPE, so the bytes must be a big-endian image.
  // (The runtime's staging buffer is the first allocation after the text,
  // stack and runtime segments; we allocate our own and compare against
  // the value delivered to user code.)
  int v = 0;
  PI_Read(g_ls_probe_ch, "%d", &v);
  // Delivery is host order: the value itself must be correct.
  g_ls_was_big_endian.store(v == 0x01020304);
  return 0;
}

TEST(ByteOrderChannel, DeliveryIsHostRepresentationForBigEndianWriters) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::cell(1));
  cluster::Cluster machine(std::move(config));
  g_ls_was_big_endian.store(false);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* spe = PI_CreateSPE(ls_image_prober, PI_MAIN, 0);
    g_ls_probe_ch = PI_CreateChannel(PI_MAIN, spe);
    PI_StartAll();
    PI_RunSPE(spe, 0, nullptr);
    PI_Write(g_ls_probe_ch, "%d", 0x01020304);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_TRUE(g_ls_was_big_endian.load());
}

}  // namespace
