// Integration tests for the Pilot API on rank-backed (type-1) channels:
// phases, process/channel creation, reads/writes of every data type,
// endpoint enforcement, format agreement, and bundles.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstring>

#include "core/cellpilot.hpp"
#include "pilot/errors.hpp"
#include "simtime/trace.hpp"

namespace {

/// A Xeon-only machine with `ranks` Pilot processes.
cluster::Cluster xeon_cluster(unsigned ranks) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(ranks));
  return cluster::Cluster(std::move(config));
}

// Worker functions must be plain function pointers for PI_CreateProcess;
// they reach their test through these globals.
PI_CHANNEL* g_ch = nullptr;
PI_CHANNEL* g_ch2 = nullptr;
std::atomic<bool> g_flag{false};

TEST(PilotApi, ConfigureReturnsAvailableProcesses) {
  cluster::Cluster machine = xeon_cluster(3);
  std::atomic<int> reported{0};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    const int n = PI_Configure(&argc, &argv);
    reported.store(n);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(reported.load(), 3);
}

TEST(PilotApi, ConfigureStripsPilotOptions) {
  cluster::Cluster machine = xeon_cluster(1);
  std::atomic<int> remaining{-1};
  cellpilot::RunOptions opts;
  opts.args = {"-pisvc=x-not-ours", "-pisvc=t"};
  const auto r = cellpilot::run(
      machine,
      [&](int argc, char** argv) {
        PI_Configure(&argc, &argv);
        remaining.store(argc);
        EXPECT_STREQ(argv[1], "-pisvc=x-not-ours");
        PI_StartAll();
        PI_StopMain(0);
        return 0;
      },
      opts);
  simtime::Trace::global().set_enabled(false);  // undo -pisvc=t
  EXPECT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(remaining.load(), 2);  // program name + unknown arg survive
}

int echo_worker(int /*index*/, void* /*arg*/) {
  // Reads every scalar type and an array, echoes a checksum back.
  std::uint8_t b;
  char c;
  std::int16_t h;
  int d;
  long long ld;
  unsigned u;
  unsigned long long lu;
  float f;
  double lf;
  long double Lf;
  PI_Read(g_ch, "%b %c %hd %d %ld %u %lu %f %lf %Lf", &b, &c, &h, &d, &ld,
          &u, &lu, &f, &lf, &Lf);
  double sum = b + c + h + d + static_cast<double>(ld) + u +
               static_cast<double>(lu) + f + lf + static_cast<double>(Lf);
  PI_Write(g_ch2, "%lf", sum);
  return 0;
}

TEST(PilotApi, EveryDataTypeRoundTrips) {
  cluster::Cluster machine = xeon_cluster(2);
  std::atomic<double> echoed{0};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    g_ch = PI_CreateChannel(PI_MAIN, w);
    g_ch2 = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    PI_Write(g_ch, "%b %c %hd %d %ld %u %lu %f %lf %Lf", 1, 'A', 300, 70000,
             5000000000LL, 17u, 99ULL, 1.5, 2.25, 3.75L);
    double sum = 0;
    PI_Read(g_ch2, "%lf", &sum);
    echoed.store(sum);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_DOUBLE_EQ(echoed.load(),
                   1 + 65 + 300 + 70000 + 5000000000.0 + 17 + 99 + 1.5 +
                       2.25 + 3.75);
}

int array_worker(int /*index*/, void* /*arg*/) {
  float data[1000];
  PI_Read(g_ch, "%1000f", data);
  float total = 0;
  for (float v : data) total += v;
  PI_Write(g_ch2, "%f", static_cast<double>(total));
  return 0;
}

TEST(PilotApi, PaperWriteExampleThousandFloats) {
  // The paper's §II.C example: PI_Write(workerdata, "%1000f", data).
  cluster::Cluster machine = xeon_cluster(2);
  std::atomic<float> total{0};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(array_worker, 0, nullptr);
    g_ch = PI_CreateChannel(PI_MAIN, w);
    g_ch2 = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    float data[1000];
    for (int i = 0; i < 1000; ++i) data[i] = 1.0f;
    PI_Write(g_ch, "%1000f", data);
    float sum = 0;
    PI_Read(g_ch2, "%f", &sum);
    total.store(sum);
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(total.load(), 1000.0f);
}

int wrong_writer(int /*index*/, void* /*arg*/) {
  // This process is the READER of g_ch; writing must be rejected.
  int v = 0;
  PI_Write(g_ch, "%d", v);
  return 0;
}

TEST(PilotApi, WritingFromTheReaderAborts) {
  cluster::Cluster machine = xeon_cluster(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(wrong_writer, 0, nullptr);
    g_ch = PI_CreateChannel(PI_MAIN, w);
    PI_StartAll();
    int v = 1;
    PI_Write(g_ch, "%d", v);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("not the writer"), std::string::npos);
  // The diagnostic carries the offending source location.
  EXPECT_NE(r.abort_reason.find("api_test.cpp"), std::string::npos);
}

int int_reader(int /*index*/, void* /*arg*/) {
  unsigned v = 0;
  PI_Read(g_ch, "%u", &v);  // writer sends %d: type mismatch
  return 0;
}

TEST(PilotApi, FormatDisagreementAborts) {
  cluster::Cluster machine = xeon_cluster(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(int_reader, 0, nullptr);
    g_ch = PI_CreateChannel(PI_MAIN, w);
    PI_StartAll();
    PI_Write(g_ch, "%d", 5);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("does not match"), std::string::npos);
}

TEST(PilotApi, CreateProcessAfterStartAllAborts) {
  cluster::Cluster machine = xeon_cluster(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_StartAll();
    PI_CreateProcess(echo_worker, 0, nullptr);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("wrong phase"), std::string::npos);
}

TEST(PilotApi, TooManyProcessesAborts) {
  cluster::Cluster machine = xeon_cluster(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_CreateProcess(echo_worker, 0, nullptr);
    PI_CreateProcess(echo_worker, 1, nullptr);  // third rank doesn't exist
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("out of MPI processes"), std::string::npos);
}

int stop_main_caller(int /*index*/, void* /*arg*/) {
  PI_StopMain(0);  // only PI_MAIN may do this
  return 0;
}

TEST(PilotApi, StopMainFromWorkerAborts) {
  cluster::Cluster machine = xeon_cluster(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(stop_main_caller, 0, nullptr);
    g_ch = PI_CreateChannel(PI_MAIN, w);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
}

int slow_writer(int /*index*/, void* /*arg*/) {
  const int v = 9;
  PI_Write(g_ch, "%d", v);
  return 0;
}

TEST(PilotApi, ChannelHasDataReflectsQueue) {
  cluster::Cluster machine = xeon_cluster(2);
  std::atomic<int> before{-1}, after{-1};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(slow_writer, 0, nullptr);
    g_ch = PI_CreateChannel(w, PI_MAIN);
    PI_StartAll();
    // Poll until the message lands, then assert the transitions.
    int seen = PI_ChannelHasData(g_ch);
    before.store(seen);
    while (PI_ChannelHasData(g_ch) == 0) {
    }
    int v = 0;
    PI_Read(g_ch, "%d", &v);
    after.store(PI_ChannelHasData(g_ch));
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(after.load(), 0);
}

PI_CHANNEL* g_worker_ch[3];

int index_writer(int index, void* /*arg*/) {
  // Each worker writes its own index on its own channel.
  PI_Write(g_worker_ch[index], "%d", index);
  return 0;
}

TEST(PilotApi, SelectFindsReadyChannels) {
  cluster::Cluster machine = xeon_cluster(4);
  std::atomic<int> sum{0};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < 3; ++i) {
      PI_PROCESS* w = PI_CreateProcess(index_writer, i, nullptr);
      g_worker_ch[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_BUNDLE* bundle = PI_CreateBundle(PI_SELECT, g_worker_ch, 3);
    PI_StartAll();
    EXPECT_EQ(PI_GetBundleSize(bundle), 3);
    for (int done = 0; done < 3; ++done) {
      const int who = PI_Select(bundle);
      EXPECT_EQ(PI_GetBundleChannel(bundle, who), g_worker_ch[who]);
      int v = -1;
      PI_Read(g_worker_ch[who], "%d", &v);
      EXPECT_EQ(v, who);
      sum.fetch_add(v);
    }
    EXPECT_EQ(PI_TrySelect(bundle), -1);  // drained
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(sum.load(), 0 + 1 + 2);
}

PI_CHANNEL* g_bcast_ch[3];

int bcast_receiver(int index, void* /*arg*/) {
  double v = 0;
  PI_Read(g_bcast_ch[index], "%lf", &v);
  EXPECT_DOUBLE_EQ(v, 6.28);
  return 0;
}

TEST(PilotApi, BroadcastIsMpmd) {
  // Only the broadcaster calls PI_Broadcast; receivers call PI_Read —
  // the paper's contrast with MPI's SPMD convention.
  cluster::Cluster machine = xeon_cluster(4);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < 3; ++i) {
      PI_PROCESS* w = PI_CreateProcess(bcast_receiver, i, nullptr);
      g_bcast_ch[i] = PI_CreateChannel(PI_MAIN, w);
    }
    PI_BUNDLE* bundle = PI_CreateBundle(PI_BROADCAST, g_bcast_ch, 3);
    PI_StartAll();
    PI_Broadcast(bundle, "%lf", 6.28);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

PI_CHANNEL* g_gather_ch[3];

int gather_contributor(int index, void* /*arg*/) {
  const int v = index * 7;
  const double d = index + 0.5;
  PI_Write(g_gather_ch[index], "%d %lf", v, d);
  return 0;
}

TEST(PilotApi, GatherFillsPerItemArrays) {
  cluster::Cluster machine = xeon_cluster(4);
  std::array<int, 3> ints{};
  std::array<double, 3> doubles{};
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    for (int i = 0; i < 3; ++i) {
      PI_PROCESS* w = PI_CreateProcess(gather_contributor, i, nullptr);
      g_gather_ch[i] = PI_CreateChannel(w, PI_MAIN);
    }
    PI_BUNDLE* bundle = PI_CreateBundle(PI_GATHER, g_gather_ch, 3);
    PI_StartAll();
    PI_Gather(bundle, "%d %lf", ints.data(), doubles.data());
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  EXPECT_EQ(ints, (std::array<int, 3>{0, 7, 14}));
  EXPECT_EQ(doubles, (std::array<double, 3>{0.5, 1.5, 2.5}));
}

TEST(PilotApi, BundleNeedsCommonEndpoint) {
  cluster::Cluster machine = xeon_cluster(3);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* a = PI_CreateProcess(echo_worker, 0, nullptr);
    PI_PROCESS* b = PI_CreateProcess(echo_worker, 1, nullptr);
    PI_CHANNEL* chans[2] = {PI_CreateChannel(a, PI_MAIN),
                            PI_CreateChannel(a, b)};  // readers differ
    PI_CreateBundle(PI_SELECT, chans, 2);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("common"), std::string::npos);
}

TEST(PilotApi, BundleUsageIsEnforced) {
  cluster::Cluster machine = xeon_cluster(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(echo_worker, 0, nullptr);
    PI_CHANNEL* chans[1] = {PI_CreateChannel(w, PI_MAIN)};
    PI_BUNDLE* select_bundle = PI_CreateBundle(PI_SELECT, chans, 1);
    PI_StartAll();
    PI_Gather(select_bundle, "%d", nullptr);  // wrong usage
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
}

int noop_worker(int /*index*/, void* /*arg*/) { return 0; }

TEST(PilotApi, SurplusRanksExitCleanly) {
  // 4 ranks available, only 1 worker created: ranks 2..3 are surplus.
  cluster::Cluster machine = xeon_cluster(4);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_CreateProcess(noop_worker, 0, nullptr);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

int identity_checker(int index, void* /*arg*/) {
  EXPECT_EQ(PI_MyProcess(), index);
  return 0;
}

TEST(PilotApi, ProcessIdentityIsVisible) {
  cluster::Cluster machine = xeon_cluster(3);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    EXPECT_EQ(PI_MyProcess() == 0 || PI_MyProcess() == -1, true);
    PI_CreateProcess(identity_checker, 1, nullptr);
    PI_CreateProcess(identity_checker, 2, nullptr);
    PI_StartAll();
    EXPECT_EQ(PI_MyProcess(), 0);
    EXPECT_EQ(PI_ProcessCount(), 3);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

TEST(PilotApi, ApiOutsideAnyApplicationThrows) {
  EXPECT_THROW(PI_GetMain(), pilot::PilotError);
  EXPECT_THROW(PI_ProcessCount(), pilot::PilotError);
}

TEST(PilotApi, SetNamesImproveDiagnostics) {
  cluster::Cluster machine = xeon_cluster(2);
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w = PI_CreateProcess(wrong_writer, 0, nullptr);
    g_ch = PI_CreateChannel(PI_MAIN, w);
    PI_SetName(w, "worker");
    PI_SetChannelName(g_ch, "results");
    PI_StartAll();
    int v = 1;
    PI_Write(g_ch, "%d", v);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("results"), std::string::npos);
}

}  // namespace

namespace {

TEST(PilotApi, PiAbortCarriesCodeAndLocation) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_StartAll();
    PI_Abort(42, "giving up");
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
  EXPECT_NE(r.abort_reason.find("PI_Abort(42)"), std::string::npos);
  EXPECT_NE(r.abort_reason.find("giving up"), std::string::npos);
  EXPECT_NE(r.abort_reason.find("api_test.cpp"), std::string::npos);
}

TEST(PilotApi, PiLogRecordsIntoTheTrace) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));
  simtime::ScopedTrace scoped;
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_StartAll();
    PI_Log("phase one complete");
    PI_StopMain(0);
    return 0;
  });
  ASSERT_FALSE(r.aborted) << r.abort_reason;
  bool found = false;
  for (const auto& e : simtime::Trace::global().events()) {
    if (e.detail.find("phase one complete") != std::string::npos) {
      found = true;
      EXPECT_EQ(e.entity, "P0");
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace

namespace {

PI_CHANNEL* g_req[2];
PI_CHANNEL** g_rep = nullptr;

int copy_channel_worker(int index, void* /*arg*/) {
  int v = 0;
  PI_Read(g_req[index], "%d", &v);
  PI_Write(g_rep[index], "%d", v * 10);
  return 0;
}

TEST(PilotApi, CopyChannelsCarryAnIndependentReverseStream) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(3));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_PROCESS* w0 = PI_CreateProcess(copy_channel_worker, 0, nullptr);
    PI_PROCESS* w1 = PI_CreateProcess(copy_channel_worker, 1, nullptr);
    g_req[0] = PI_CreateChannel(PI_MAIN, w0);
    g_req[1] = PI_CreateChannel(PI_MAIN, w1);
    // A duplicate set with REVERSED use is not what CopyChannels gives
    // (same endpoints); so copy the workers' reply channels instead.
    PI_CHANNEL* replies[2] = {PI_CreateChannel(w0, PI_MAIN),
                              PI_CreateChannel(w1, PI_MAIN)};
    g_rep = PI_CopyChannels(replies, 2);
    EXPECT_NE(g_rep[0], replies[0]);  // fresh channels...
    EXPECT_EQ(g_rep[0]->from, replies[0]->from);  // ...same endpoints
    EXPECT_EQ(g_rep[1]->to, replies[1]->to);
    PI_StartAll();
    PI_Write(g_req[0], "%d", 3);
    PI_Write(g_req[1], "%d", 4);
    int a = 0, b = 0;
    PI_Read(g_rep[0], "%d", &a);
    PI_Read(g_rep[1], "%d", &b);
    EXPECT_EQ(a, 30);
    EXPECT_EQ(b, 40);
    PI_StopMain(0);
    return 0;
  });
  EXPECT_FALSE(r.aborted) << r.abort_reason;
}

TEST(PilotApi, CopyChannelsValidatesInput) {
  cluster::ClusterConfig config;
  config.nodes.push_back(cluster::NodeSpec::xeon(1));
  cluster::Cluster machine(std::move(config));
  const auto r = cellpilot::run(machine, [&](int argc, char** argv) {
    PI_Configure(&argc, &argv);
    PI_CopyChannels(nullptr, 1);
    PI_StartAll();
    PI_StopMain(0);
    return 0;
  });
  EXPECT_TRUE(r.aborted);
}

}  // namespace
