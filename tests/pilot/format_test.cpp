// Unit + property tests for Pilot's format-string language.
#include "pilot/format.hpp"

#include <gtest/gtest.h>

namespace {

using namespace pilot;

TEST(Format, ScalarSpecifiers) {
  const Format f = parse_format("%b %c %hd %d %ld %u %lu %f %lf %Lf");
  ASSERT_EQ(f.items.size(), 10u);
  const TypeCode expected[] = {
      TypeCode::kByte,   TypeCode::kChar,   TypeCode::kInt16,
      TypeCode::kInt32,  TypeCode::kInt64,  TypeCode::kUInt32,
      TypeCode::kUInt64, TypeCode::kFloat,  TypeCode::kDouble,
      TypeCode::kLongDouble};
  for (std::size_t i = 0; i < f.items.size(); ++i) {
    EXPECT_EQ(f.items[i].type, expected[i]) << i;
    EXPECT_EQ(f.items[i].count, 1u);
    EXPECT_FALSE(f.items[i].star);
  }
}

TEST(Format, CountsAndStar) {
  const Format f = parse_format("%1000f %*d %100Lf");
  ASSERT_EQ(f.items.size(), 3u);
  EXPECT_EQ(f.items[0].count, 1000u);
  EXPECT_TRUE(f.items[1].star);
  EXPECT_EQ(f.items[2].count, 100u);
  EXPECT_EQ(f.items[2].type, TypeCode::kLongDouble);
}

TEST(Format, WhitespaceBetweenItemsIgnored) {
  EXPECT_EQ(parse_format("  %d   %f ").items.size(), 2u);
}

TEST(Format, EmptyFormatIsAZeroLengthMessage) {
  // item* admits zero items: a synchronization token with no payload.
  const auto f = parse_format("");
  EXPECT_TRUE(f.items.empty());
  EXPECT_EQ(f.payload_bytes(), 0u);
  EXPECT_TRUE(parse_format("   ").items.empty());
}

TEST(Format, ElementSizesMatchWireLayout) {
  EXPECT_EQ(element_size(TypeCode::kByte), 1u);
  EXPECT_EQ(element_size(TypeCode::kChar), 1u);
  EXPECT_EQ(element_size(TypeCode::kInt16), 2u);
  EXPECT_EQ(element_size(TypeCode::kInt32), 4u);
  EXPECT_EQ(element_size(TypeCode::kInt64), 8u);
  EXPECT_EQ(element_size(TypeCode::kFloat), 4u);
  EXPECT_EQ(element_size(TypeCode::kDouble), 8u);
  EXPECT_EQ(element_size(TypeCode::kLongDouble), 16u);
}

TEST(Format, PayloadBytesOfPaperExamples) {
  // "%100d": 100 ints = 400 bytes; "%100Lf": 100 long doubles = 1600 bytes.
  EXPECT_EQ(parse_format("%100d").payload_bytes(), 400u);
  EXPECT_EQ(parse_format("%100Lf").payload_bytes(), 1600u);
  EXPECT_EQ(parse_format("%b").payload_bytes(), 1u);
}

TEST(Format, PayloadBytesOnStarThrows) {
  EXPECT_THROW(parse_format("%*d").payload_bytes(), PilotError);
}

class BadFormat : public ::testing::TestWithParam<const char*> {};

TEST_P(BadFormat, IsRejectedWithFormatError) {
  try {
    parse_format(GetParam());
    FAIL() << "expected PilotError for \"" << GetParam() << "\"";
  } catch (const PilotError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kFormat);
  }
}

// Note: "" and "   " are *not* here — zero items is legal (a zero-length
// message; see EmptyFormatIsAZeroLengthMessage).
INSTANTIATE_TEST_SUITE_P(Cases, BadFormat,
                         ::testing::Values("%", "%0d", "%z",
                                           "d", "%10", "%l", "%lx", "%h",
                                           "%hq", "%L", "%Ld", "%-5d",
                                           "100d", "%d,%d"));

TEST(Signature, SensitiveToTypeCountAndOrder) {
  const auto sig = [](const char* s) { return signature(parse_format(s)); };
  EXPECT_EQ(sig("%100d"), sig("%100d"));
  EXPECT_NE(sig("%100d"), sig("%100u"));
  EXPECT_NE(sig("%100d"), sig("%99d"));
  EXPECT_NE(sig("%d %f"), sig("%f %d"));
  EXPECT_NE(sig("%d %d"), sig("%2d"));
}

TEST(Signature, UnresolvedStarThrows) {
  EXPECT_THROW(signature(parse_format("%*d")), PilotError);
}

TEST(Format, ToStringRoundTripsSpelling) {
  EXPECT_EQ(to_string(parse_format("%100d %lf")), "%100d %lf");
  EXPECT_EQ(to_string(parse_format("%b")), "%b");
  EXPECT_EQ(to_string(parse_format("%*Lf")), "%*Lf");
}

/// Property: parse(to_string(f)) == f for resolved formats.
class FormatRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(FormatRoundTrip, ParseOfToStringIsIdentity) {
  const Format f = parse_format(GetParam());
  const Format g = parse_format(to_string(f));
  ASSERT_EQ(g.items.size(), f.items.size());
  for (std::size_t i = 0; i < f.items.size(); ++i) {
    EXPECT_EQ(g.items[i].type, f.items[i].type);
    EXPECT_EQ(g.items[i].count, f.items[i].count);
    EXPECT_EQ(g.items[i].star, f.items[i].star);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, FormatRoundTrip,
                         ::testing::Values("%d", "%100Lf", "%b %c %hd",
                                           "%3f %7lf", "%1000f %u %lu",
                                           "%2c %2c %2c"));

}  // namespace
