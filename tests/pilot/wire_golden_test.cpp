// wire_golden_test.cpp — golden bytes for the channel wire format.
//
// The other wire tests prove round-trips; these pin the *encoding itself*.
// A refactor that changes any byte a peer would see — header layout, magic
// spelling, completion-code numbering, fault-frame payload layout — must
// consciously update these arrays, because it breaks every deployed peer.
#include <gtest/gtest.h>

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/protocol.hpp"
#include "pilot/format.hpp"
#include "pilot/wire.hpp"

namespace {

using cellpilot::CompletionStatus;
using pilot::FaultFrame;
using pilot::Format;
using pilot::frame_fault;
using pilot::frame_message;
using pilot::is_fault_frame;
using pilot::parse_fault_frame;
using pilot::parse_format;
using pilot::signature;

/// The wire format is "native layout, little-endian hosts" by design (the
/// byteorder tests cover the contract); golden bytes are spelled for the
/// little-endian layout every supported target uses.
bool little_endian() { return std::endian::native == std::endian::little; }

std::vector<std::byte> bytes(std::initializer_list<unsigned> raw) {
  std::vector<std::byte> out;
  out.reserve(raw.size());
  for (unsigned v : raw) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(WireGolden, MagicsSpellPiltPilfAndPils) {
  EXPECT_EQ(pilot::kWireMagic, 0x50494C54u);        // "PILT" big-endian read
  EXPECT_EQ(pilot::kWireFaultMagic, 0x50494C46u);   // "PILF"
  EXPECT_EQ(pilot::kWireMarkerMagic, 0x50494C53u);  // "PILS"
}

TEST(WireGolden, CompletionCodesMatchTableNumbering) {
  // These two cross the wire inside fault frames; renumbering them strands
  // peers mid-conversation.
  EXPECT_EQ(static_cast<std::uint32_t>(CompletionStatus::kSpeFault), 4u);
  EXPECT_EQ(static_cast<std::uint32_t>(CompletionStatus::kSpeTimeout), 5u);
  EXPECT_EQ(static_cast<std::uint32_t>(CompletionStatus::kOk), 0u);
}

TEST(WireGolden, FormatSignaturesAreStable) {
  // FNV-1a over (type, count) pairs; the signature rides in every MPI-leg
  // header and in the SPE mailbox request words.
  EXPECT_EQ(signature(parse_format("%d")), 0x496F0F97u);
  EXPECT_EQ(signature(parse_format("%3d")), 0xA9169175u);
  EXPECT_EQ(signature(parse_format("%200lf")), 0xFA7AADA5u);
}

TEST(WireGolden, DataFrameBytes) {
  if (!little_endian()) GTEST_SKIP() << "golden bytes are little-endian";

  const Format fmt = parse_format("%d");
  const std::uint32_t sig = signature(fmt);
  const std::int32_t value = 0x11223344;
  std::vector<std::byte> payload(sizeof value);
  std::memcpy(payload.data(), &value, sizeof value);

  const std::vector<std::byte> golden = bytes({
      0x54, 0x4C, 0x49, 0x50,                          // magic "PILT"
      0x97, 0x0F, 0x6F, 0x49,                          // signature("%d")
      0x00, 0x00, 0x00, 0x00,                          // epoch = 0 (original)
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload_bytes = 4
      0x44, 0x33, 0x22, 0x11,                          // the int
  });
  EXPECT_EQ(frame_message(sig, payload), golden);
  EXPECT_EQ(pilot::frame_epoch(golden), 0u);
}

TEST(WireGolden, RespawnedWriterDataFrameBytes) {
  if (!little_endian()) GTEST_SKIP() << "golden bytes are little-endian";

  // A writer on its third incarnation (respawned twice) stamps epoch 2;
  // everything else is byte-identical to the epoch-0 frame, which is what
  // keeps no-fault runs indistinguishable on the wire.
  const Format fmt = parse_format("%d");
  const std::uint32_t sig = signature(fmt);
  const std::int32_t value = 0x11223344;
  std::vector<std::byte> payload(sizeof value);
  std::memcpy(payload.data(), &value, sizeof value);

  const std::vector<std::byte> golden = bytes({
      0x54, 0x4C, 0x49, 0x50,                          // magic "PILT"
      0x97, 0x0F, 0x6F, 0x49,                          // signature("%d")
      0x02, 0x00, 0x00, 0x00,                          // epoch = 2
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload_bytes = 4
      0x44, 0x33, 0x22, 0x11,                          // the int
  });
  EXPECT_EQ(frame_message(sig, payload, /*epoch=*/2), golden);
  EXPECT_EQ(pilot::frame_epoch(golden), 2u);
}

TEST(WireGolden, SpeFaultFrameBytes) {
  if (!little_endian()) GTEST_SKIP() << "golden bytes are little-endian";

  FaultFrame fault;
  fault.status = static_cast<std::uint32_t>(CompletionStatus::kSpeFault);
  fault.fault_code = 2;
  fault.epoch = 1;  // the dying writer was itself a first respawn
  fault.detail = "spe died";

  const std::vector<std::byte> golden = bytes({
      0x46, 0x4C, 0x49, 0x50,                          // magic "PILF"
      0x04, 0x00, 0x00, 0x00,                          // status = kSpeFault
      0x01, 0x00, 0x00, 0x00,                          // epoch = 1
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x0C, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 4 + 8
      0x02, 0x00, 0x00, 0x00,                          // fault_code
      's', 'p', 'e', ' ', 'd', 'i', 'e', 'd',          // detail
  });
  const auto framed = frame_fault(fault);
  EXPECT_EQ(framed, golden);
  ASSERT_TRUE(is_fault_frame(framed));

  const FaultFrame back = parse_fault_frame(golden);
  EXPECT_EQ(back.status, 4u);
  EXPECT_EQ(back.fault_code, 2u);
  EXPECT_EQ(back.epoch, 1u);
  EXPECT_EQ(back.detail, "spe died");
}

TEST(WireGolden, SpeTimeoutFrameBytes) {
  if (!little_endian()) GTEST_SKIP() << "golden bytes are little-endian";

  FaultFrame fault;
  fault.status = static_cast<std::uint32_t>(CompletionStatus::kSpeTimeout);
  fault.fault_code = 0;

  const std::vector<std::byte> golden = bytes({
      0x46, 0x4C, 0x49, 0x50,                          // magic "PILF"
      0x05, 0x00, 0x00, 0x00,                          // status = kSpeTimeout
      0x00, 0x00, 0x00, 0x00,                          // epoch = 0
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 4 + 0
      0x00, 0x00, 0x00, 0x00,                          // fault_code
  });
  const auto framed = frame_fault(fault);
  EXPECT_EQ(framed, golden);

  const FaultFrame back = parse_fault_frame(golden);
  EXPECT_EQ(back.status, 5u);
  EXPECT_EQ(back.epoch, 0u);
  EXPECT_TRUE(back.detail.empty());
}

TEST(WireGolden, FaultFramesAreDistinguishableFromDataFrames) {
  const auto data = frame_message(7, {});
  EXPECT_FALSE(is_fault_frame(data));
  FaultFrame fault;
  fault.status = static_cast<std::uint32_t>(CompletionStatus::kSpeFault);
  EXPECT_TRUE(is_fault_frame(frame_fault(fault)));
}

TEST(WireGolden, CheckpointMarkerFrameBytes) {
  if (!little_endian()) GTEST_SKIP() << "golden bytes are little-endian";

  // The PILS marker a Co-Pilot floods to its peers when it joins cut 3 at
  // virtual stamp 0x1122334455667788 from node 1.  The cut id rides in the
  // signature slot, so the 24-byte header shape is shared with PILT/PILF.
  pilot::MarkerFrame marker;
  marker.cut = 3;
  marker.stamp = 0x1122334455667788;
  marker.node = 1;

  const std::vector<std::byte> golden = bytes({
      0x53, 0x4C, 0x49, 0x50,                          // magic "PILS"
      0x03, 0x00, 0x00, 0x00,                          // signature = cut 3
      0x00, 0x00, 0x00, 0x00,                          // epoch
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x0C, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 8 + 4
      0x88, 0x77, 0x66, 0x55, 0x44, 0x33, 0x22, 0x11,  // stamp
      0x01, 0x00, 0x00, 0x00,                          // node
  });
  const auto framed = pilot::frame_marker(marker);
  EXPECT_EQ(framed, golden);
  ASSERT_TRUE(pilot::is_marker_frame(framed));
  EXPECT_FALSE(pilot::is_fault_frame(framed));

  const pilot::MarkerFrame back = pilot::parse_marker_frame(golden);
  EXPECT_EQ(back.cut, 3u);
  EXPECT_EQ(back.stamp, 0x1122334455667788);
  EXPECT_EQ(back.node, 1u);
}

TEST(WireGolden, CheckpointFileBytes) {
  if (!little_endian()) GTEST_SKIP() << "golden bytes are little-endian";

  // A committed-but-empty cut: header, epochs and links sections plus the
  // commit trailer, each PILS-framed as [WireHeader][CRC32(body)][body].
  // These bytes are the on-disk format — a refactor that moves any of
  // them invalidates every archived checkpoint and must bump kFileVersion.
  cellpilot::ckpt::Image img;
  img.cut = 1;

  const std::vector<std::byte> golden = bytes({
      // --- kHeader section -------------------------------------------
      0x53, 0x4C, 0x49, 0x50,                          // magic "PILS"
      0x01, 0x00, 0x00, 0x00,                          // signature = kHeader
      0x01, 0x00, 0x00, 0x00,                          // epoch = cut 1
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x24, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 4 + 32
      0x07, 0x50, 0xD0, 0xE8,                          // CRC32(body)
      0x01, 0x00, 0x00, 0x00,                          // file version 1
      0x00, 0x00, 0x00, 0x00,                          // shard count 0
      0x00, 0x00, 0x00, 0x00,                          // channel count 0
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // begin stamp
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // commit stamp
      // --- kEpochs section -------------------------------------------
      0x53, 0x4C, 0x49, 0x50,                          // magic "PILS"
      0x02, 0x00, 0x00, 0x00,                          // signature = kEpochs
      0x01, 0x00, 0x00, 0x00,                          // epoch = cut 1
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 4 + 4
      0x1C, 0xDF, 0x44, 0x21,                          // CRC32(body)
      0x00, 0x00, 0x00, 0x00,                          // epoch count 0
      // --- kLinks section --------------------------------------------
      0x53, 0x4C, 0x49, 0x50,                          // magic "PILS"
      0x06, 0x00, 0x00, 0x00,                          // signature = kLinks
      0x01, 0x00, 0x00, 0x00,                          // epoch = cut 1
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 4 + 4
      0x1C, 0xDF, 0x44, 0x21,                          // CRC32(body)
      0x00, 0x00, 0x00, 0x00,                          // link count 0
      // --- kCommit trailer -------------------------------------------
      0x53, 0x4C, 0x49, 0x50,                          // magic "PILS"
      0x07, 0x00, 0x00, 0x00,                          // signature = kCommit
      0x01, 0x00, 0x00, 0x00,                          // epoch = cut 1
      0x00, 0x00, 0x00, 0x00,                          // reserved
      0x10, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // payload = 4 + 12
      0x7A, 0xFB, 0xBE, 0xC3,                          // CRC32(body)
      0x7C, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // covered bytes = 124
      0x2F, 0x7A, 0xF9, 0x1A,                          // CRC32(file so far)
  });
  const std::vector<std::byte> serialized = cellpilot::ckpt::serialize(img);
  EXPECT_EQ(serialized, golden);
  EXPECT_TRUE(cellpilot::ckpt::deserialize(serialized).ok);
}

}  // namespace
